(* Observability invariants (the tentpole's correctness contract):

   1. a Disabled registry records nothing — counters, gauges, timers and
      the trace buffer all stay empty through a real solve;
   2. the deterministic metric subset is identical across domain counts
      1 / 2 / 4 for the same workload;
   3. span (name, depth) sequences are identical across domain counts;
   4. solver outputs are bit-identical (Int64.bits_of_float) with
      observability Disabled vs Full. *)

open Rrms_core
module Obs = Rrms_obs.Obs

(* Every obs test mutates the global level; run the body with a chosen
   level and always restore Disabled + a clean registry afterwards so
   the rest of the suite is unaffected. *)
let with_level level f =
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level Obs.Disabled;
      Obs.reset ())
    (fun () ->
      Obs.set_level level;
      Obs.reset ();
      f ())

let dataset seed ~n ~m =
  let rng = Rrms_rng.Rng.create seed in
  Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))

(* A workload touching every instrumented layer: skyline, grid, matrix,
   MRST (incremental + fresh), set cover, LP, guard probes. *)
let workload ?domains () =
  let points = dataset 7 ~n:300 ~m:3 in
  let hd = Hd_rrms.solve ~gamma:3 ?domains points ~r:4 in
  let hg = Hd_greedy.solve ~gamma:3 ?domains points ~r:4 in
  let g = Greedy.solve points ~r:3 in
  (hd, hg, g)

(* ------------------------------------------------------------------ *)

let test_counter_primitives () =
  with_level Obs.Counters (fun () ->
      let c = Obs.Counter.make "rrms_test_counter_total" in
      Obs.Counter.incr c;
      Obs.Counter.add c 41;
      Alcotest.(check int) "counter accumulates" 42 (Obs.Counter.value c);
      let g = Obs.Gauge.make "rrms_test_gauge" in
      Obs.Gauge.set_int g 7;
      Obs.Gauge.set g 3.5;
      Alcotest.(check (float 0.)) "gauge last-write-wins" 3.5 (Obs.Gauge.value g);
      let f = Obs.Floatc.make "rrms_test_float_total" in
      Obs.Floatc.add f 0.25;
      Obs.Floatc.add f 0.25;
      Alcotest.(check (float 1e-12)) "float counter sums" 0.5 (Obs.Floatc.value f);
      let t = Obs.Timer.make "rrms_test_seconds" in
      Obs.Timer.observe t 0.003;
      let v = Obs.Timer.time t (fun () -> 42) in
      Alcotest.(check int) "Timer.time returns the value" 42 v;
      Alcotest.(check int) "timer observed both" 2 (Obs.Timer.count t);
      Obs.reset ();
      Alcotest.(check int) "reset zeroes counters" 0 (Obs.Counter.value c);
      Alcotest.(check int) "reset zeroes timers" 0 (Obs.Timer.count t))

let test_disabled_records_nothing () =
  with_level Obs.Disabled (fun () ->
      let c = Obs.Counter.make "rrms_test_disabled_total" in
      Obs.Counter.incr c;
      Obs.Counter.add c 10;
      Alcotest.(check int) "disabled counter stays 0" 0 (Obs.Counter.value c);
      ignore (workload ());
      List.iter
        (fun (name, v) ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "disabled metric %s stays 0" name)
            0. v)
        (Obs.snapshot ());
      Alcotest.(check int) "disabled trace stays empty" 0 (Obs.Trace.count ()))

let test_deterministic_across_domains () =
  let snapshot_at domains =
    with_level Obs.Counters (fun () ->
        ignore (workload ~domains ());
        Obs.deterministic_snapshot ())
  in
  let base = snapshot_at 1 in
  Alcotest.(check bool)
    "deterministic snapshot is non-trivial" true
    (List.exists (fun (_, v) -> v > 0.) base);
  List.iter
    (fun domains ->
      let other = snapshot_at domains in
      Alcotest.(check int)
        "same metric count" (List.length base) (List.length other);
      List.iter2
        (fun (n1, v1) (n2, v2) ->
          Alcotest.(check string) "same metric name" n1 n2;
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s identical at %d domains" n1 domains)
            v1 v2)
        base other)
    [ 2; 4 ]

let test_spans_deterministic_across_domains () =
  let spans_at domains =
    with_level Obs.Full (fun () ->
        ignore (workload ~domains ());
        List.map
          (fun (e : Obs.Trace.event) -> (e.name, e.depth))
          (Obs.Trace.events ()))
  in
  let base = spans_at 1 in
  Alcotest.(check bool) "spans recorded" true (base <> []);
  List.iter
    (fun domains ->
      let other = spans_at domains in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "span (name, depth) sequence identical at %d domains"
           domains)
        base other)
    [ 2; 4 ]

(* Bit-identity: run each solver with obs Disabled, then again at Full
   with tracing live, and compare every output float bit for bit. *)
let test_results_bit_identical () =
  let bits = Int64.bits_of_float in
  let run () =
    let points = dataset 11 ~n:250 ~m:2 in
    let r2 = Rrms2d.solve_exact points ~r:3 in
    let sw = Sweepline.solve points ~r:3 in
    let hd_pts = dataset 13 ~n:250 ~m:3 in
    let hd = Hd_rrms.solve ~gamma:3 hd_pts ~r:4 in
    let hg = Hd_greedy.solve ~gamma:3 hd_pts ~r:4 in
    let g = Greedy.solve hd_pts ~r:3 in
    ( (r2.Rrms2d.selected, bits r2.Rrms2d.dp_value, bits r2.Rrms2d.regret),
      (sw.Sweepline.selected, bits sw.Sweepline.dp_value, bits sw.Sweepline.regret),
      ( hd.Hd_rrms.selected,
        bits hd.Hd_rrms.eps_min,
        bits hd.Hd_rrms.guarantee,
        bits hd.Hd_rrms.discretized_regret ),
      (hg.Hd_greedy.selected, bits hg.Hd_greedy.discretized_regret),
      (g.Greedy.selected, bits g.Greedy.regret_lp) )
  in
  let off = with_level Obs.Disabled run in
  let on = with_level Obs.Full run in
  let (r2o, swo, hdo, hgo, go) = off and (r2n, swn, hdn, hgn, gn) = on in
  let check_sel msg a b = Alcotest.(check (array int)) msg a b in
  let check_bits msg a b = Alcotest.(check int64) msg a b in
  let (s1, d1, e1) = r2o and (s2, d2, e2) = r2n in
  check_sel "2d selected" s1 s2;
  check_bits "2d dp bits" d1 d2;
  check_bits "2d regret bits" e1 e2;
  let (s1, d1, e1) = swo and (s2, d2, e2) = swn in
  check_sel "sweepline selected" s1 s2;
  check_bits "sweepline dp bits" d1 d2;
  check_bits "sweepline regret bits" e1 e2;
  let (s1, a1, b1, c1) = hdo and (s2, a2, b2, c2) = hdn in
  check_sel "hd-rrms selected" s1 s2;
  check_bits "hd-rrms eps bits" a1 a2;
  check_bits "hd-rrms guarantee bits" b1 b2;
  check_bits "hd-rrms grid-regret bits" c1 c2;
  let (s1, a1) = hgo and (s2, a2) = hgn in
  check_sel "hd-greedy selected" s1 s2;
  check_bits "hd-greedy grid-regret bits" a1 a2;
  let (s1, a1) = go and (s2, a2) = gn in
  check_sel "greedy selected" s1 s2;
  check_bits "greedy regret bits" a1 a2

let test_sinks () =
  with_level Obs.Full (fun () ->
      ignore (workload ());
      let prom = Obs.prometheus () in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "prometheus exposes %s" name)
            true (contains prom name))
        [
          "rrms_skyline_size";
          "rrms_matrix_cells_total";
          "rrms_mrst_incremental_solves_total";
          "rrms_hd_rrms_probes_total";
          "rrms_lp_pivots_total";
          "rrms_setcover_greedy_iterations_total";
          "rrms_span_seconds_bucket";
          "# TYPE rrms_span_seconds histogram";
        ];
      let sum = Obs.summary () in
      Alcotest.(check bool) "summary mentions probes" true
        (contains sum "rrms_hd_rrms_probes_total");
      let path = Filename.temp_file "rrms_obs" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_trace path;
          let ic = open_in path in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          let lines = List.rev !lines in
          Alcotest.(check bool) "trace file non-empty" true (lines <> []);
          List.iter
            (fun l ->
              Alcotest.(check bool) "every trace line is a JSON object" true
                (String.length l > 2 && l.[0] = '{'
                && l.[String.length l - 1] = '}'))
            lines;
          Alcotest.(check bool) "trace has span events" true
            (List.exists (fun l -> contains l "\"type\":\"span\"") lines);
          Alcotest.(check bool) "trace ends with a metric snapshot" true
            (List.exists (fun l -> contains l "\"type\":\"metric\"") lines)))

let test_probe_cache_counters () =
  (* Two probes at the same threshold index: the second must be a cache
     hit, with exactly one MRST solve issued. *)
  with_level Obs.Counters (fun () ->
      let points = dataset 17 ~n:120 ~m:3 in
      ignore (Hd_rrms.solve ~gamma:3 points ~r:3);
      let misses =
        List.assoc "rrms_hd_rrms_probe_cache_misses_total"
          (Obs.deterministic_snapshot ())
      in
      let incremental =
        List.assoc "rrms_mrst_incremental_solves_total"
          (Obs.deterministic_snapshot ())
      in
      Alcotest.(check (float 0.))
        "every cache miss is one incremental MRST solve" misses incremental)

(* ------------------------------------------------------------------ *)
(* Latency histograms                                                  *)

let test_hist_bounds () =
  let b = Obs.Hist.bounds in
  Alcotest.(check int) "46 finite bounds" 46 (Array.length b);
  Alcotest.(check (float 1e-12)) "first bound is 1 microsecond" 1e-6 b.(0);
  Alcotest.(check (float 1e-6)) "last bound is 1000 seconds" 1000. b.(45);
  for i = 0 to Array.length b - 2 do
    Alcotest.(check bool)
      (Printf.sprintf "bounds strictly increase at %d" i)
      true
      (b.(i) < b.(i + 1))
  done;
  (* Five buckets per decade: each bound is 10x the one five back. *)
  for i = 0 to Array.length b - 6 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "log spacing at %d" i)
      10.
      (b.(i + 5) /. b.(i))
  done;
  let b2 = Obs.Hist.bounds in
  Alcotest.(check (array (float 0.))) "bounds are deterministic" b b2

(* Quantiles are exact when every observation sits on a bucket bound:
   the answer is the bound holding the ceil(q*n)-th smallest value. *)
let test_hist_quantiles_exact () =
  let b = Obs.Hist.bounds in
  let h = Obs.Hist.create () in
  Alcotest.(check (float 0.)) "empty histogram answers 0" 0.
    (Obs.Hist.quantile h 0.5);
  for _ = 1 to 50 do Obs.Hist.observe h b.(5) done;
  for _ = 1 to 45 do Obs.Hist.observe h b.(10) done;
  for _ = 1 to 5 do Obs.Hist.observe h b.(20) done;
  Alcotest.(check int) "count" 100 (Obs.Hist.count h);
  Alcotest.(check (float 0.)) "p50 exact" b.(5) (Obs.Hist.quantile h 0.50);
  Alcotest.(check (float 0.)) "p95 exact" b.(10) (Obs.Hist.quantile h 0.95);
  Alcotest.(check (float 0.)) "p99 exact" b.(20) (Obs.Hist.quantile h 0.99);
  Alcotest.(check (float 0.)) "p100 is the max" b.(20) (Obs.Hist.quantile h 1.);
  Alcotest.(check (float 0.)) "max tracked" b.(20) (Obs.Hist.max_value h);
  (* Overflow: a value past the last bound answers the observed max. *)
  let o = Obs.Hist.create () in
  Obs.Hist.observe o 5000.;
  Alcotest.(check (float 0.)) "overflow answers max" 5000.
    (Obs.Hist.quantile o 0.99);
  (* Clamp: quantile never exceeds the observed max even when the
     bucket's upper bound does. *)
  let c = Obs.Hist.create () in
  Obs.Hist.observe c (b.(7) *. 1.5);
  Alcotest.(check (float 0.)) "quantile clamped by max" (b.(7) *. 1.5)
    (Obs.Hist.quantile c 0.5)

let test_hist_merge_associative () =
  let b = Obs.Hist.bounds in
  (* Dyadic-ish observation sets so sums compare exactly in float. *)
  let mk values =
    let h = Obs.Hist.create () in
    List.iter (fun (v, times) -> for _ = 1 to times do Obs.Hist.observe h v done)
      values;
    h
  in
  let ha = mk [ (b.(3), 7); (b.(12), 2) ]
  and hb = mk [ (b.(8), 5); (b.(30), 1) ]
  and hc = mk [ (b.(3), 4); (b.(40), 3) ] in
  let left = Obs.Hist.merge (Obs.Hist.merge ha hb) hc in
  let right = Obs.Hist.merge ha (Obs.Hist.merge hb hc) in
  Alcotest.(check (array int)) "merge buckets associative"
    (Obs.Hist.buckets left) (Obs.Hist.buckets right);
  Alcotest.(check int) "merge count associative" (Obs.Hist.count left)
    (Obs.Hist.count right);
  Alcotest.(check (float 0.)) "merge max associative"
    (Obs.Hist.max_value left) (Obs.Hist.max_value right);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "quantile %.2f associative" q)
        (Obs.Hist.quantile left q) (Obs.Hist.quantile right q))
    [ 0.5; 0.95; 0.99; 1. ];
  (* Empty is an identity for the bucket counts. *)
  let e = Obs.Hist.create () in
  Alcotest.(check (array int)) "empty is merge identity"
    (Obs.Hist.buckets ha)
    (Obs.Hist.buckets (Obs.Hist.merge ha e));
  Alcotest.(check int) "order of observation is irrelevant"
    (Obs.Hist.count left)
    (Array.fold_left ( + ) 0 (Obs.Hist.buckets left))

(* ------------------------------------------------------------------ *)
(* Request-scoped contexts                                             *)

let test_ctx_deterministic_across_domains () =
  let counters_at domains =
    with_level Obs.Counters (fun () ->
        let ctx = Obs.Ctx.create ~request_id:"r" ~session_id:"s" () in
        Obs.Ctx.with_ctx ctx (fun () -> ignore (workload ~domains ()));
        Obs.Ctx.deterministic_counters ctx)
  in
  let base = counters_at 1 in
  Alcotest.(check bool)
    "ctx deterministic counters are non-trivial" true
    (List.exists (fun (_, v) -> v > 0.) base);
  List.iter
    (fun domains ->
      Alcotest.(check (list (pair string (float 0.))))
        (Printf.sprintf "ctx counters identical at %d domains" domains)
        base (counters_at domains))
    [ 2; 4 ]

(* Two contexts live at once on separate threads: each must see only
   its own work, and captured spans must carry its own request_id. *)
let test_ctx_disjoint_under_concurrency () =
  with_level Obs.Counters (fun () ->
      let run rid =
        let ctx =
          Obs.Ctx.create ~request_id:rid ~session_id:"shared"
            ~capture_spans:true ()
        in
        Obs.Ctx.with_ctx ctx (fun () -> ignore (workload ~domains:2 ()));
        ctx
      in
      let result = Array.make 2 None in
      let threads =
        Array.init 2 (fun i ->
            Thread.create
              (fun () -> result.(i) <- Some (run (Printf.sprintf "req-%d" i)))
              ())
      in
      Array.iter Thread.join threads;
      let ctxs = Array.map Option.get result in
      Array.iteri
        (fun i ctx ->
          let rid = Printf.sprintf "req-%d" i in
          Alcotest.(check string) "request id kept" rid
            (Obs.Ctx.request_id ctx);
          Alcotest.(check bool)
            (Printf.sprintf "%s recorded counters" rid)
            true
            (List.exists (fun (_, v) -> v > 0.) (Obs.Ctx.counters ctx));
          let spans = Obs.Ctx.spans ctx in
          Alcotest.(check bool)
            (Printf.sprintf "%s captured spans at Counters level" rid)
            true (spans <> []);
          List.iter
            (fun (e : Obs.Trace.event) ->
              Alcotest.(check (option string))
                "span tagged with own request_id" (Some rid)
                (List.assoc_opt "request_id" e.attrs))
            spans)
        ctxs;
      (* Both ran the same workload: the deterministic view agrees. *)
      Alcotest.(check (list (pair string (float 0.))))
        "both contexts saw identical deterministic work"
        (Obs.Ctx.deterministic_counters ctxs.(0))
        (Obs.Ctx.deterministic_counters ctxs.(1)))

(* ------------------------------------------------------------------ *)
(* Trace-buffer drop accounting                                       *)

let test_trace_drop_accounting () =
  with_level Obs.Full (fun () ->
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_max_events Obs.Trace.default_max_events)
        (fun () ->
          Obs.Trace.set_max_events 50;
          Obs.Trace.clear ();
          for i = 1 to 80 do
            Obs.Span.with_ (Printf.sprintf "drop_test_%d" i) (fun () -> ())
          done;
          Alcotest.(check int) "buffer capped at 50" 50 (Obs.Trace.count ());
          Alcotest.(check int) "30 spans dropped" 30 (Obs.Trace.dropped ());
          Alcotest.(check (float 0.))
            "drop counter registered as rrms_trace_dropped_total" 30.
            (List.assoc "rrms_trace_dropped_total" (Obs.snapshot ()));
          let path = Filename.temp_file "rrms_obs_drop" ".jsonl" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Obs.write_trace path;
              let ic = open_in path in
              let n = in_channel_length ic in
              let body = really_input_string ic n in
              close_in ic;
              let contains needle =
                let nh = String.length body and nn = String.length needle in
                let rec go i =
                  i + nn <= nh && (String.sub body i nn = needle || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool) "footer present" true
                (contains "\"type\":\"trace_footer\"");
              Alcotest.(check bool) "footer counts events" true
                (contains "\"events\":50");
              Alcotest.(check bool) "footer counts drops" true
                (contains "\"dropped\":30"));
          Obs.Trace.clear ();
          Alcotest.(check int) "clear resets the drop count" 0
            (Obs.Trace.dropped ())))

(* ------------------------------------------------------------------ *)
(* Distributed span identity                                           *)

(* A traced context assigns hierarchical span ids: every captured span
   carries the context's trace id, exactly one span is the root, and
   every other span reaches the root over parent edges. *)
let test_span_ids_single_root_reachable () =
  with_level Obs.Counters (fun () ->
      let ctx =
        Obs.Ctx.create ~request_id:"rq-1" ~session_id:"s" ~capture_spans:true
          ~trace_id:"t-alpha" ()
      in
      Obs.Ctx.with_ctx ctx (fun () ->
          Obs.Span.with_ "outer" (fun () ->
              Obs.Span.with_ "mid" (fun () ->
                  Obs.Span.with_ "leaf_a" (fun () -> ()));
              Obs.Span.with_ "leaf_b" (fun () -> ())));
      let spans = Obs.Ctx.spans ctx in
      Alcotest.(check int) "four spans captured" 4 (List.length spans);
      List.iter
        (fun (e : Obs.Trace.event) ->
          Alcotest.(check string) "trace id stamped" "t-alpha" e.trace_id;
          Alcotest.(check bool) "span id minted" true (e.span_id <> ""))
        spans;
      let ids =
        List.map (fun (e : Obs.Trace.event) -> e.span_id) spans
      in
      Alcotest.(check int) "span ids unique" (List.length ids)
        (List.length (List.sort_uniq compare ids));
      let roots =
        List.filter (fun (e : Obs.Trace.event) -> e.parent_id = "") spans
      in
      Alcotest.(check int) "exactly one root" 1 (List.length roots);
      let root = List.hd roots in
      let parent_of id =
        List.find_opt (fun (e : Obs.Trace.event) -> e.span_id = id) spans
      in
      List.iter
        (fun (e : Obs.Trace.event) ->
          let rec climb (e : Obs.Trace.event) hops =
            Alcotest.(check bool) "no parent cycle" true (hops < 10);
            if e.span_id = root.Obs.Trace.span_id then ()
            else
              match parent_of e.parent_id with
              | Some p -> climb p (hops + 1)
              | None ->
                  Alcotest.failf "span %s has dangling parent %s" e.span_id
                    e.parent_id
          in
          climb e 0)
        spans)

(* An untraced context mints no identity: span events keep empty ids,
   so the JSON encoding (and any byte-compared output) is unchanged. *)
let test_span_ids_absent_untraced () =
  with_level Obs.Counters (fun () ->
      let ctx =
        Obs.Ctx.create ~request_id:"rq-2" ~session_id:"s" ~capture_spans:true ()
      in
      Obs.Ctx.with_ctx ctx (fun () ->
          Obs.Span.with_ "outer" (fun () ->
              Obs.Span.with_ "inner" (fun () -> ())));
      List.iter
        (fun (e : Obs.Trace.event) ->
          Alcotest.(check string) "no span id" "" e.span_id;
          Alcotest.(check string) "no parent id" "" e.parent_id;
          Alcotest.(check string) "no trace id" "" e.trace_id)
        (Obs.Ctx.spans ctx))

(* The cross-process edge: a context created with [parent_span] (the
   wire envelope's [parent]) hangs its root from that foreign id, and
   [Span.current_id] exposes the innermost open span for the next hop's
   envelope. *)
let test_span_ids_cross_process_edge () =
  with_level Obs.Counters (fun () ->
      Alcotest.(check string) "current_id empty outside spans" ""
        (Obs.Span.current_id ());
      let ctx =
        Obs.Ctx.create ~request_id:"rq-3" ~session_id:"s" ~capture_spans:true
          ~trace_id:"t-beta" ~parent_span:"router-span.7" ()
      in
      let inner_id = ref "" in
      Obs.Ctx.with_ctx ctx (fun () ->
          Obs.Span.with_ "worker.solve" (fun () ->
              inner_id := Obs.Span.current_id ()));
      Alcotest.(check bool) "current_id non-empty inside traced span" true
        (!inner_id <> "");
      Alcotest.(check string) "current_id closed again" ""
        (Obs.Span.current_id ());
      match Obs.Ctx.spans ctx with
      | [ e ] ->
          Alcotest.(check string) "root hangs from the wire parent"
            "router-span.7" e.Obs.Trace.parent_id;
          Alcotest.(check string) "current_id was the span's own id"
            e.Obs.Trace.span_id !inner_id
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

(* span_json / span_of_json round-trip — the wire form of a worker span
   dump must reconstruct the event the router splices into its merged
   trace. *)
let test_span_json_roundtrip () =
  let module Telemetry = Rrms_serve.Telemetry in
  let e =
    {
      Obs.Trace.name = "serve.skyline";
      domain = 2;
      depth = 1;
      start = 0.125;
      dur = 0.0625;
      attrs = [ ("dataset", "k1"); ("request_id", "rq") ];
      span_id = "rq.3";
      parent_id = "rq.1";
      trace_id = "t-gamma";
    }
  in
  let e' = Telemetry.span_of_json (Telemetry.span_json e) in
  Alcotest.(check string) "name" e.Obs.Trace.name e'.Obs.Trace.name;
  Alcotest.(check int) "domain" e.Obs.Trace.domain e'.Obs.Trace.domain;
  Alcotest.(check int) "depth" e.Obs.Trace.depth e'.Obs.Trace.depth;
  Alcotest.(check (float 0.)) "start" e.Obs.Trace.start e'.Obs.Trace.start;
  Alcotest.(check (float 0.)) "dur" e.Obs.Trace.dur e'.Obs.Trace.dur;
  Alcotest.(check (list (pair string string))) "attrs" e.Obs.Trace.attrs
    e'.Obs.Trace.attrs;
  Alcotest.(check string) "span_id" e.Obs.Trace.span_id e'.Obs.Trace.span_id;
  Alcotest.(check string) "parent_id" e.Obs.Trace.parent_id
    e'.Obs.Trace.parent_id;
  Alcotest.(check string) "trace_id" e.Obs.Trace.trace_id
    e'.Obs.Trace.trace_id;
  (* Untraced events omit the ids on the wire and come back empty. *)
  let plain = { e with Obs.Trace.span_id = ""; parent_id = ""; trace_id = "" } in
  let plain' = Telemetry.span_of_json (Telemetry.span_json plain) in
  Alcotest.(check string) "empty span_id survives" "" plain'.Obs.Trace.span_id;
  Alcotest.(check string) "empty trace_id survives" "" plain'.Obs.Trace.trace_id

(* Hist raw export → import round-trip: the wire [metrics] op ships
   count/sum/max/buckets; the rebuilt histogram must merge and answer
   quantiles exactly like the original. *)
let test_hist_import_roundtrip () =
  let b = Obs.Hist.bounds in
  let h = Obs.Hist.create () in
  List.iter
    (fun (v, times) -> for _ = 1 to times do Obs.Hist.observe h v done)
    [ (b.(4), 12); (b.(13), 6); (b.(33), 2); (5000., 1) ];
  let h' =
    Obs.Hist.import ~count:(Obs.Hist.count h) ~sum:(Obs.Hist.sum h)
      ~max_value:(Obs.Hist.max_value h) ~buckets:(Obs.Hist.buckets h)
  in
  Alcotest.(check int) "count" (Obs.Hist.count h) (Obs.Hist.count h');
  Alcotest.(check (float 0.)) "sum" (Obs.Hist.sum h) (Obs.Hist.sum h');
  Alcotest.(check (float 0.)) "max" (Obs.Hist.max_value h)
    (Obs.Hist.max_value h');
  Alcotest.(check (array int)) "buckets" (Obs.Hist.buckets h)
    (Obs.Hist.buckets h');
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "quantile %.2f" q)
        (Obs.Hist.quantile h q) (Obs.Hist.quantile h' q))
    [ 0.5; 0.95; 0.99; 1. ];
  (* Merging an imported copy doubles the bucket counts exactly. *)
  let doubled = Obs.Hist.merge h h' in
  Alcotest.(check int) "merge of import doubles count"
    (2 * Obs.Hist.count h)
    (Obs.Hist.count doubled);
  (* A short (pre-resize) bucket array zero-pads. *)
  let short = Obs.Hist.import ~count:3 ~sum:1. ~max_value:0.5 ~buckets:[| 3 |] in
  Alcotest.(check int) "short import keeps count" 3 (Obs.Hist.count short)

let suite =
  [
    Alcotest.test_case "instrument primitives" `Quick test_counter_primitives;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "deterministic across domains" `Quick
      test_deterministic_across_domains;
    Alcotest.test_case "spans deterministic across domains" `Quick
      test_spans_deterministic_across_domains;
    Alcotest.test_case "results bit-identical on/off" `Quick
      test_results_bit_identical;
    Alcotest.test_case "sinks (prometheus, summary, trace)" `Quick test_sinks;
    Alcotest.test_case "probe cache counters consistent" `Quick
      test_probe_cache_counters;
    Alcotest.test_case "hist bounds deterministic" `Quick test_hist_bounds;
    Alcotest.test_case "hist quantiles exact on bounds" `Quick
      test_hist_quantiles_exact;
    Alcotest.test_case "hist merge associative" `Quick
      test_hist_merge_associative;
    Alcotest.test_case "ctx deterministic across domains" `Quick
      test_ctx_deterministic_across_domains;
    Alcotest.test_case "ctx disjoint under concurrency" `Quick
      test_ctx_disjoint_under_concurrency;
    Alcotest.test_case "trace drop accounting" `Quick
      test_trace_drop_accounting;
    Alcotest.test_case "span ids: single root, all reachable" `Quick
      test_span_ids_single_root_reachable;
    Alcotest.test_case "span ids absent untraced" `Quick
      test_span_ids_absent_untraced;
    Alcotest.test_case "span ids: cross-process edge" `Quick
      test_span_ids_cross_process_edge;
    Alcotest.test_case "span json roundtrip" `Quick test_span_json_roundtrip;
    Alcotest.test_case "hist import roundtrip" `Quick
      test_hist_import_roundtrip;
  ]
