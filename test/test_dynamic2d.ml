(* Tests for incremental 2D maintenance: every answer must match a
   from-scratch recomputation, and the dominated-insert fast path must
   actually skip recomputations. *)

open Rrms_core

let from_scratch points r =
  if Array.length points = 0 then ([||], 0.)
  else begin
    let res = Rrms2d.solve_exact points ~r in
    (res.Rrms2d.selected, res.Rrms2d.regret)
  end

let test_matches_from_scratch_under_inserts () =
  let rng = Rrms_rng.Rng.create 201 in
  let r = 3 in
  let dyn = Dynamic2d.create ~r [||] in
  let reference = ref [] in
  for step = 1 to 60 do
    let p = [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |] in
    ignore (Dynamic2d.insert dyn p);
    reference := p :: !reference;
    if step mod 10 = 0 then begin
      let points = Array.of_list (List.rev !reference) in
      let _, want = from_scratch points r in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "regret matches at step %d" step)
        want (Dynamic2d.regret dyn)
    end
  done

let test_dominated_inserts_skip_recompute () =
  let dyn = Dynamic2d.create ~r:2 [| [| 1.; 1. |]; [| 0.5; 1.5 |] |] in
  ignore (Dynamic2d.regret dyn);
  let before = Dynamic2d.recompute_count dyn in
  (* All dominated by (1,1): no recomputation needed. *)
  for _ = 1 to 20 do
    ignore (Dynamic2d.insert dyn [| 0.3; 0.4 |])
  done;
  Alcotest.(check bool) "not dirty" false (Dynamic2d.is_dirty dyn);
  ignore (Dynamic2d.regret dyn);
  Alcotest.(check int) "no recompute for dominated inserts" before
    (Dynamic2d.recompute_count dyn);
  (* A new skyline point dirties the cache. *)
  ignore (Dynamic2d.insert dyn [| 2.; 0.1 |]);
  Alcotest.(check bool) "dirty after skyline insert" true (Dynamic2d.is_dirty dyn);
  ignore (Dynamic2d.regret dyn);
  Alcotest.(check int) "one recompute" (before + 1) (Dynamic2d.recompute_count dyn)

let test_random_insert_recompute_rate () =
  (* Under random insertion order the expected number of skyline-touching
     inserts is O(log² n); recomputes must be a small fraction. *)
  let rng = Rrms_rng.Rng.create 202 in
  let dyn = Dynamic2d.create ~r:3 [||] in
  let n = 1_000 in
  for _ = 1 to n do
    ignore
      (Dynamic2d.insert dyn
         [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |]);
    (* Query every insert so each dirty flag costs one recompute. *)
    ignore (Dynamic2d.regret dyn)
  done;
  let rc = Dynamic2d.recompute_count dyn in
  Alcotest.(check bool)
    (Printf.sprintf "recomputes (%d) << inserts (%d)" rc n)
    true
    (rc < n / 5)

let test_remove () =
  let dyn =
    Dynamic2d.create ~r:2 [| [| 0.; 1. |]; [| 0.7; 0.7 |]; [| 1.; 0. |] |]
  in
  let regret_before = Dynamic2d.regret dyn in
  Alcotest.(check bool) "three points, r=2: positive regret" true
    (regret_before > 0.);
  (* Removing a non-skyline point changes nothing. *)
  let h = Dynamic2d.insert dyn [| 0.1; 0.1 |] in
  ignore (Dynamic2d.regret dyn);
  let rc = Dynamic2d.recompute_count dyn in
  Dynamic2d.remove dyn h;
  ignore (Dynamic2d.regret dyn);
  Alcotest.(check int) "no recompute for interior removal" rc
    (Dynamic2d.recompute_count dyn);
  (* Removing a skyline member triggers recomputation; with only two
     points left the regret drops to 0. *)
  Dynamic2d.remove dyn 1;
  Alcotest.(check (float 1e-9)) "regret after removing the middle" 0.
    (Dynamic2d.regret dyn);
  Alcotest.(check int) "two live tuples + none" 2 (Dynamic2d.size dyn);
  (* Idempotent removal. *)
  Dynamic2d.remove dyn 1;
  Alcotest.(check int) "size unchanged" 2 (Dynamic2d.size dyn)

let test_remove_matches_from_scratch () =
  let rng = Rrms_rng.Rng.create 203 in
  let points =
    Array.init 40 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let dyn = Dynamic2d.create ~r:3 points in
  let alive = Array.make 40 true in
  for _ = 1 to 20 do
    let h = Rrms_rng.Rng.int rng 40 in
    Dynamic2d.remove dyn h;
    alive.(h) <- false;
    let remaining =
      Array.of_list
        (List.filter_map
           (fun i -> if alive.(i) then Some points.(i) else None)
           (List.init 40 Fun.id))
    in
    let _, want = from_scratch remaining 3 in
    Alcotest.(check (float 1e-9)) "regret matches after removal" want
      (Dynamic2d.regret dyn)
  done

let test_handles_stable () =
  let dyn = Dynamic2d.create ~r:1 [||] in
  let h1 = Dynamic2d.insert dyn [| 1.; 2. |] in
  let h2 = Dynamic2d.insert dyn [| 3.; 4. |] in
  Alcotest.(check bool) "distinct handles" true (h1 <> h2);
  Alcotest.(check (option (array (float 0.)))) "get h1" (Some [| 1.; 2. |])
    (Dynamic2d.get dyn h1);
  Dynamic2d.remove dyn h1;
  Alcotest.(check (option (array (float 0.)))) "h1 removed" None
    (Dynamic2d.get dyn h1);
  Alcotest.(check (option (array (float 0.)))) "h2 intact" (Some [| 3.; 4. |])
    (Dynamic2d.get dyn h2)

let test_empty_table () =
  let dyn = Dynamic2d.create ~r:2 [||] in
  Alcotest.(check (array int)) "empty selection" [||] (Dynamic2d.selection dyn);
  Alcotest.(check (float 0.)) "zero regret" 0. (Dynamic2d.regret dyn)

let test_invalid () =
  Alcotest.check_raises "r = 0"
    (Invalid_argument "Dynamic2d.create: r must be >= 1") (fun () ->
      ignore (Dynamic2d.create ~r:0 [||]));
  let dyn = Dynamic2d.create ~r:1 [||] in
  Alcotest.check_raises "3D tuple"
    (Invalid_argument "Dynamic2d: tuples must be 2D") (fun () ->
      ignore (Dynamic2d.insert dyn [| 1.; 2.; 3. |]));
  Alcotest.check_raises "unknown handle"
    (Invalid_argument "Dynamic2d.remove: unknown handle") (fun () ->
      Dynamic2d.remove dyn 99)

(* Property: over any interleaving of inserts and deletes, the
   incrementally maintained skyline covers exactly the value set of a
   from-scratch Skyline.sfs over the live tuples.  (The 2D store keeps
   sweep order, not sfs order, so the comparison is on sorted distinct
   values.) *)
let arbitrary_schedule =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun (t, p) ->
             Printf.sprintf "%d:%s" t (Rrms_geom.Vec.to_string p))
           ops))
    QCheck.Gen.(
      list_size (int_range 5 80)
        (pair small_nat (array_size (return 2) (float_range 0. 1.))))

let prop_skyline_matches_sfs =
  QCheck.Test.make ~count:80
    ~name:"dynamic 2d skyline ≡ sfs over interleaved insert/delete"
    arbitrary_schedule
    (fun ops ->
      let dyn = Dynamic2d.create ~r:2 [||] in
      let live = ref [] in
      List.iter
        (fun (tag, p) ->
          let n = List.length !live in
          if tag mod 3 = 0 && n > 1 then begin
            let h = List.nth !live (tag / 3 mod n) in
            Dynamic2d.remove dyn h;
            live := List.filter (fun x -> x <> h) !live
          end
          else live := Dynamic2d.insert dyn p :: !live)
        ops;
      let pts =
        Array.of_list
          (List.rev_map (fun h -> Option.get (Dynamic2d.get dyn h)) !live)
      in
      let values idxs src =
        List.sort_uniq compare
          (Array.to_list (Array.map (fun i -> src.(i)) idxs))
      in
      let want = values (Rrms_skyline.Skyline.sfs pts) pts in
      let got =
        List.sort_uniq compare
          (Array.to_list
             (Array.map
                (fun h -> Option.get (Dynamic2d.get dyn h))
                (Dynamic2d.skyline dyn)))
      in
      got = want)

let suite =
  [
    Alcotest.test_case "matches from-scratch (inserts)" `Quick
      test_matches_from_scratch_under_inserts;
    Alcotest.test_case "dominated inserts skip work" `Quick
      test_dominated_inserts_skip_recompute;
    Alcotest.test_case "recompute rate" `Slow test_random_insert_recompute_rate;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "remove matches from-scratch" `Quick
      test_remove_matches_from_scratch;
    Alcotest.test_case "handles stable" `Quick test_handles_stable;
    Alcotest.test_case "empty table" `Quick test_empty_table;
    Alcotest.test_case "invalid" `Quick test_invalid;
    QCheck_alcotest.to_alcotest prop_skyline_matches_sfs;
  ]
