(* The durability layer: blob atomicity and checksums, the corrupt-blob
   corpus, crash-mid-write recovery, deadline propagation through the
   admission queue, graceful drain, and stale-socket takeover.

   The load-bearing contract, asserted bitwise at several domain
   counts: an answer rehydrated from a --state-dir left by a previous
   process is byte-identical to the cold solve that produced it, and
   recomputes nothing.  Torn, truncated, version-skewed or bit-flipped
   blobs are never rehydrated — they are discarded and counted. *)

module Serve = Rrms_serve
module Json = Serve.Json
module Protocol = Serve.Protocol
module Store = Serve.Store
module Server = Serve.Server
module Persist = Serve.Persist
module Obs = Rrms_obs.Obs
module Dataset = Rrms_dataset.Dataset
module Guard = Rrms_guard.Guard

let with_counters f =
  let prev = Obs.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_level prev)
    (fun () ->
      Obs.set_level Obs.Counters;
      Obs.reset ();
      f ())

let counter = Obs.Counter.value

let temp_csv ?(n = 200) ?(m = 3) ?(seed = 11) () =
  let rng = Rrms_rng.Rng.create seed in
  let rows =
    Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  let attributes = Array.init m (fun j -> Printf.sprintf "a%d" j) in
  let d = Dataset.create ~name:"persist_test" ~attributes rows in
  let path = Filename.temp_file "rrms_persist_test" ".csv" in
  Dataset.to_csv d path;
  path

let with_csv ?n ?m ?seed f =
  let path = temp_csv ?n ?m ?seed () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let dir_seq = ref 0

let with_state_dir f =
  incr dir_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rrms_persist_%d_%d" (Unix.getpid ()) !dir_seq)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let query ?(algo = Protocol.Hd_rrms) ?(r = 4) ?(gamma = 4) ?timeout ?max_cells
    ?max_probes ?(cache = true) dataset =
  {
    Protocol.dataset;
    algo;
    r;
    gamma;
    timeout;
    max_cells;
    max_probes;
    use_cache = cache;
    explain = false;
  }

let result_string store q =
  match Store.query store q with
  | Ok { Store.result; cached; _ } -> (Json.to_string result, cached)
  | Error `Unknown_dataset -> Alcotest.fail "unexpected unknown_dataset"
  | Error `Overloaded -> Alcotest.fail "unexpected overloaded"
  | Error `Deadline_exceeded -> Alcotest.fail "unexpected deadline_exceeded"
  | Error `Draining -> Alcotest.fail "unexpected draining"

(* ------------------------------------------------------------------ *)
(* Blob roundtrips                                                    *)
(* ------------------------------------------------------------------ *)

let test_blob_roundtrip () =
  with_state_dir (fun dir ->
      let p = Persist.open_dir dir in
      let key = "00deadbeef00cafe" in
      (* Skyline. *)
      let sky = [| 0; 7; 42; 1_000_000 |] in
      Persist.save_skyline p ~key sky;
      (match Persist.load_skyline p ~key with
      | Some got -> Alcotest.(check (array int)) "skyline" sky got
      | None -> Alcotest.fail "skyline did not roundtrip");
      (* Grid: IEEE bits must survive exactly. *)
      let grid =
        [| [| 0.1; 0.2; 0.7 |]; [| 1e-300; 0.999999999999; 4.5e12 |] |]
      in
      Persist.save_grid p ~m:3 ~gamma:5 grid;
      (match Persist.load_grid p ~m:3 ~gamma:5 with
      | Some got ->
          Alcotest.(check int) "grid size" 2 (Array.length got);
          Array.iteri
            (fun i v ->
              Array.iteri
                (fun j x ->
                    Alcotest.(check bool)
                      (Printf.sprintf "grid bit-identity %d %d" i j)
                      true
                      (Int64.equal (Int64.bits_of_float x)
                         (Int64.bits_of_float grid.(i).(j))))
                v)
            got
      | None -> Alcotest.fail "grid did not roundtrip");
      (* Missing gamma is a miss, not an error. *)
      Alcotest.(check bool) "absent grid" true
        (Persist.load_grid p ~m:3 ~gamma:9 = None);
      (* Dataset. *)
      let rng = Rrms_rng.Rng.create 3 in
      let rows =
        Array.init 20 (fun _ ->
            Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.))
      in
      let d =
        Dataset.create ~name:"rt" ~attributes:[| "x"; "y"; "z" |] rows
      in
      Persist.save_dataset p ~key d;
      (match Persist.load_dataset p ~key with
      | Some got ->
          Alcotest.(check string) "dataset name" "rt" (Dataset.name got);
          Alcotest.(check int) "dataset n" 20 (Dataset.size got);
          for i = 0 to 19 do
            for j = 0 to 2 do
              Alcotest.(check bool) "dataset cell bits" true
                (Int64.equal
                   (Int64.bits_of_float (Dataset.value got i j))
                   (Int64.bits_of_float (Dataset.value d i j)))
            done
          done
      | None -> Alcotest.fail "dataset did not roundtrip");
      (* Matrix: export/import through the blob must preserve solver
         observables. *)
      let module RM = Rrms_core.Regret_matrix in
      let funcs = Rrms_core.Discretize.grid ~gamma:3 ~m:3 in
      let mat = RM.build ~funcs (Dataset.rows d) in
      Persist.save_matrix p ~key ~gamma:3 mat;
      (match Persist.load_matrix p ~key ~gamma:3 with
      | Some got ->
          Alcotest.(check int) "matrix rows" (RM.rows mat) (RM.rows got);
          Alcotest.(check int) "matrix cols" (RM.cols mat) (RM.cols got);
          for i = 0 to RM.rows mat - 1 do
            for f = 0 to RM.cols mat - 1 do
              Alcotest.(check bool) "matrix cell bits" true
                (Int64.equal
                   (Int64.bits_of_float (RM.get got i f))
                   (Int64.bits_of_float (RM.get mat i f)))
            done
          done;
          Alcotest.(check (array (float 0.)))
            "distinct values identical" (RM.distinct_values mat)
            (RM.distinct_values got)
      | None -> Alcotest.fail "matrix did not roundtrip");
      (* Result, including the embedded cache-key guard. *)
      let r = Json.Obj [ ("algo", Json.Str "cube"); ("size", Json.int 3) ] in
      Persist.save_result p ~key ~cache_key:"algo=cube;r=3" r;
      (match Persist.load_result p ~key ~cache_key:"algo=cube;r=3" with
      | Some got ->
          Alcotest.(check string) "result" (Json.to_string r)
            (Json.to_string got)
      | None -> Alcotest.fail "result did not roundtrip");
      Alcotest.(check bool) "different cache key misses" true
        (Persist.load_result p ~key ~cache_key:"algo=cube;r=4" = None))

(* ------------------------------------------------------------------ *)
(* Corrupt-blob corpus                                                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Every way a disk can lie: each corruption must be skipped AND
   counted, never decoded, and must not shadow the valid blobs. *)
let test_corrupt_blob_corpus () =
  with_counters (fun () ->
      with_state_dir (fun dir ->
          let p = Persist.open_dir dir in
          let keep = "1111111111111111" in
          Persist.save_skyline p ~key:keep [| 1; 2; 3 |];
          let blob key = Filename.concat dir ("skyline-" ^ key ^ ".blob") in
          let seed key =
            Persist.save_skyline p ~key [| 4; 5; 6 |];
            blob key
          in
          (* 1. Truncated: half the file is gone. *)
          let t = seed "2222222222222222" in
          let body = read_file t in
          write_file t (String.sub body 0 (String.length body / 2));
          (* 2. Bad checksum: one payload bit flipped. *)
          let t = seed "3333333333333333" in
          let body = read_file t in
          let b = Bytes.of_string body in
          Bytes.set b (String.length body - 1)
            (Char.chr (Char.code (Bytes.get b (String.length body - 1)) lxor 1));
          write_file t (Bytes.to_string b);
          (* 3. Wrong format version. *)
          let t = seed "4444444444444444" in
          let body = read_file t in
          let b = Bytes.of_string body in
          Bytes.set b 4 '\xee';
          write_file t (Bytes.to_string b);
          (* 4. Wrong magic (not our file at all). *)
          let t = seed "5555555555555555" in
          let body = read_file t in
          write_file t ("XXXX" ^ String.sub body 4 (String.length body - 4));
          (* 5. Partial rename: a leftover temp file. *)
          write_file
            (Filename.concat dir "skyline-6666666666666666.blob.tmp-1-0")
            "half a blob";
          (* 6. Shorter than the header. *)
          write_file (blob "7777777777777777") "RRMB";
          (* Load-time detection: each corrupt blob is a miss, unlinked
             and counted; the valid one still reads. *)
          let c0 = counter Persist.Metrics.corrupt in
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "corrupt %s not rehydrated" key)
                true
                (Persist.load_skyline p ~key = None))
            [
              "2222222222222222"; "3333333333333333"; "4444444444444444";
              "5555555555555555"; "7777777777777777";
            ];
          Alcotest.(check int) "each counted once" 5
            (counter Persist.Metrics.corrupt - c0);
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "corrupt %s unlinked" key)
                false
                (Sys.file_exists (blob key)))
            [ "2222222222222222"; "3333333333333333"; "4444444444444444" ];
          (match Persist.load_skyline p ~key:keep with
          | Some got -> Alcotest.(check (array int)) "survivor" [| 1; 2; 3 |] got
          | None -> Alcotest.fail "valid blob must survive the corpus");
          (* Startup-scan detection: recreate the corpus and open the
             directory fresh — the scan discards and tallies without
             decoding. *)
          let t = seed "8888888888888888" in
          let body = read_file t in
          write_file t (String.sub body 0 (String.length body - 3));
          write_file
            (Filename.concat dir "skyline-9999999999999999.blob.tmp-2-0")
            "torn";
          let p2 = Persist.open_dir dir in
          let s = Persist.last_scan p2 in
          Alcotest.(check int) "scan keeps the valid blob" 1 s.Persist.valid;
          Alcotest.(check int) "scan discards the torn blob" 1
            s.Persist.corrupt;
          (* Two leftovers: the fabricated one from case 5 above and the
             fresh one planted just before this reopen. *)
          Alcotest.(check int) "scan sweeps temp litter" 2 s.Persist.partial;
          Alcotest.(check bool) "torn blob gone from disk" false
            (Sys.file_exists t)))

(* The torn_write fault: the blob lands under its final name with a
   full-length header over a truncated payload — exactly what a lying
   disk produces — and the next load must refuse it. *)
let test_torn_write_fault () =
  with_counters (fun () ->
      with_state_dir (fun dir ->
          Fun.protect
            ~finally:(fun () ->
              Serve.Persist.Fault.clear ();
              Serve.Persist.Fault.configure_from_env ())
            (fun () ->
              let p = Persist.open_dir dir in
              Serve.Persist.Fault.set (Serve.Persist.Fault.Torn None);
              Persist.save_skyline p ~key:"aaaaaaaaaaaaaaaa" [| 9; 8; 7 |];
              Serve.Persist.Fault.clear ();
              let c0 = counter Persist.Metrics.corrupt in
              Alcotest.(check bool) "torn blob refused" true
                (Persist.load_skyline p ~key:"aaaaaaaaaaaaaaaa" = None);
              Alcotest.(check int) "and counted" 1
                (counter Persist.Metrics.corrupt - c0);
              (* The write path is healthy again afterwards. *)
              Persist.save_skyline p ~key:"aaaaaaaaaaaaaaaa" [| 9; 8; 7 |];
              match Persist.load_skyline p ~key:"aaaaaaaaaaaaaaaa" with
              | Some got ->
                  Alcotest.(check (array int)) "clean rewrite" [| 9; 8; 7 |] got
              | None -> Alcotest.fail "rewrite after torn fault failed")))

(* ------------------------------------------------------------------ *)
(* Restart recovery                                                   *)
(* ------------------------------------------------------------------ *)

(* A store over a directory another store populated answers warm —
   bit-identically — and recomputes nothing, at every domain count.
   This is the whole point of the tentpole. *)
let test_restart_warm_bit_identical () =
  with_csv ~n:250 ~m:3 ~seed:29 (fun csv ->
      with_state_dir (fun dir ->
          let cold =
            with_counters (fun () ->
                let store =
                  Store.create ~domains:1 ~persist:(Persist.open_dir dir) ()
                in
                let l = Store.load store csv in
                let r, cached = result_string store (query l.Store.key) in
                Alcotest.(check bool) "cold solve uncached" false cached;
                r)
          in
          List.iter
            (fun domains ->
              with_counters (fun () ->
                  (* A fresh store: empty memory, same directory — the
                     moral equivalent of a restarted process. *)
                  let store =
                    Store.create ~domains ~persist:(Persist.open_dir dir) ()
                  in
                  let l = Store.load store csv in
                  let warm, cached = result_string store (query l.Store.key) in
                  Alcotest.(check bool)
                    (Printf.sprintf "rehydrated hit at %d domains" domains)
                    true cached;
                  Alcotest.(check string)
                    (Printf.sprintf "bit-identical at %d domains" domains)
                    cold warm;
                  Alcotest.(check int) "no skyline recompute" 0
                    (counter Store.Metrics.skyline_misses);
                  Alcotest.(check int) "no matrix rebuild" 0
                    (counter Store.Metrics.matrix_misses);
                  Alcotest.(check int) "no grid rebuild" 0
                    (counter Store.Metrics.grid_misses);
                  (* And with the result blob gone, the artifacts alone
                     must still reproduce the same bytes. *)
                  Array.iter
                    (fun f ->
                      if
                        String.length f >= 7 && String.sub f 0 7 = "result-"
                      then Sys.remove (Filename.concat dir f))
                    (Sys.readdir dir);
                  let store2 =
                    Store.create ~domains ~persist:(Persist.open_dir dir) ()
                  in
                  let l2 = Store.load store2 csv in
                  let resolved, c2 = result_string store2 (query l2.Store.key) in
                  Alcotest.(check bool) "solves without the result blob" false
                    c2;
                  Alcotest.(check string)
                    (Printf.sprintf
                       "artifact-rehydrated solve bit-identical at %d domains"
                       domains)
                    cold resolved))
            [ 1; 2; 4 ]))

(* crash@N: the process dies mid-write (SIGKILL semantics, temp litter
   on disk); a restart over the same directory scans clean, loads no
   corrupt blob, and still answers correctly. *)
let serve_exe = "../bin/rrms_serve_bin.exe"

let run_stdio ?(env = "") ?(args = "") requests =
  let ic, oc =
    Unix.open_process
      (Printf.sprintf "%s %s --stdio %s 2>/dev/null" env serve_exe args)
  in
  List.iter
    (fun r ->
      output_string oc r;
      output_char oc '\n')
    requests;
  flush oc;
  (try close_out oc with Sys_error _ -> ());
  let lines = ref [] in
  (try
     while true do
       match In_channel.input_line ic with
       | Some l -> lines := l :: !lines
       | None -> raise Exit
     done
   with Exit -> ());
  let status = Unix.close_process (ic, oc) in
  (status, List.rev !lines)

(* Response lines carry a wall-clock [elapsed_ms] member; splice it out
   so comparisons see only the deterministic payload. *)
let strip_elapsed line =
  match String.index_opt line 'e' with
  | None -> line
  | Some _ -> (
      let marker = "\"elapsed_ms\":" in
      let mlen = String.length marker in
      let rec find i =
        if i + mlen > String.length line then None
        else if String.sub line i mlen = marker then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> line
      | Some start ->
          let stop = String.index_from line (start + mlen) ',' in
          String.sub line 0 start
          ^ String.sub line (stop + 1) (String.length line - stop - 1))

let test_crash_mid_write_recovery () =
  with_csv ~n:150 ~m:3 ~seed:31 (fun csv ->
      with_state_dir (fun dir ->
          let load_line =
            Printf.sprintf "{\"id\":1,\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv
          in
          let query_line =
            "{\"id\":2,\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":4,\"gamma\":4}"
          in
          (* Reference answer from an unfaulted cold process. *)
          let _, ref_lines =
            run_stdio
              ~args:(Printf.sprintf "--state-dir %s" (Filename.quote dir))
              [ load_line; query_line ]
          in
          let ref_result =
            match List.nth_opt ref_lines 1 with
            | Some l -> l
            | None -> Alcotest.fail "reference session gave no answer"
          in
          rm_rf dir;
          (* The doomed process: killed by the injector on its 3rd blob
             write — mid-artifact-spill, after fsyncing half a temp
             file. *)
          let status, _ =
            run_stdio
              ~env:"RRMS_SERVE_FAULT=crash@3"
              ~args:(Printf.sprintf "--state-dir %s" (Filename.quote dir))
              [ load_line; query_line ]
          in
          (match status with
          | Unix.WEXITED 137 -> ()
          | Unix.WEXITED c ->
              Alcotest.fail
                (Printf.sprintf "crash@3 process exited %d, wanted 137" c)
          | _ -> Alcotest.fail "crash@3 process not an exit");
          Alcotest.(check bool) "crash left temp litter" true
            (Array.exists
               (fun f ->
                 Astring_contains.contains f ".tmp-"
                 || Filename.check_suffix f ".blob")
               (Sys.readdir dir));
          (* Restart over the crashed directory: the scan sweeps the
             litter, loads nothing corrupt, and the answer matches the
             unfaulted reference byte for byte. *)
          let status2, lines2 =
            run_stdio
              ~args:(Printf.sprintf "--state-dir %s" (Filename.quote dir))
              [ load_line; query_line; "{\"id\":3,\"req\":\"stats\"}" ]
          in
          (match status2 with
          | Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "restarted process did not exit cleanly");
          (match List.nth_opt lines2 1 with
          | Some l ->
              Alcotest.(check string) "answer identical after crash recovery"
                (strip_elapsed ref_result) (strip_elapsed l)
          | None -> Alcotest.fail "restarted session gave no answer");
          match List.nth_opt lines2 2 with
          | Some stats ->
              Alcotest.(check bool) "no corrupt blob loaded" true
                (Astring_contains.contains stats "\"scan_corrupt\":0");
              Alcotest.(check bool) "litter swept or absent" true
                (Astring_contains.contains stats "\"scan_partial\":1"
                || Astring_contains.contains stats "\"scan_partial\":0")
          | None -> Alcotest.fail "no stats line"))

(* ------------------------------------------------------------------ *)
(* Deadline propagation                                               *)
(* ------------------------------------------------------------------ *)

(* The protocol timeout is an end-to-end deadline: a request that
   spends it all waiting for an admission slot is refused with
   deadline_exceeded — distinct from the solver's own timeout — before
   any solver work runs. *)
let test_deadline_covers_queue_wait () =
  with_counters (fun () ->
      with_csv ~n:80 (fun csv ->
          let store = Store.create ~max_inflight:1 ~max_queue:4 () in
          let l = Store.load store csv in
          (* Prime the artifacts so the deadline run isn't paying
             build costs. *)
          ignore (result_string store (query ~cache:false l.Store.key));
          let gate = Mutex.create () in
          let cv = Condition.create () in
          let state = ref `Idle in
          let holder =
            Thread.create
              (fun () ->
                ignore
                  (Store.with_admission store (fun () ->
                       Mutex.lock gate;
                       state := `Holding;
                       Condition.broadcast cv;
                       while !state <> `Release do
                         Condition.wait cv gate
                       done;
                       Mutex.unlock gate)))
              ()
          in
          Mutex.lock gate;
          while !state <> `Holding do
            Condition.wait cv gate
          done;
          Mutex.unlock gate;
          (* Release the slot only after the queued request's 20 ms
             budget is long gone. *)
          let releaser =
            Thread.create
              (fun () ->
                Thread.delay 0.15;
                Mutex.lock gate;
                state := `Release;
                Condition.broadcast cv;
                Mutex.unlock gate)
              ()
          in
          (match
             Store.query store (query ~cache:false ~timeout:0.02 l.Store.key)
           with
          | Error `Deadline_exceeded -> ()
          | Ok _ -> Alcotest.fail "queued past its deadline yet solved"
          | Error _ -> Alcotest.fail "wrong refusal for an expired deadline");
          Alcotest.(check bool) "counted" true
            (counter Store.Metrics.deadline_exceeded >= 1);
          Thread.join releaser;
          Thread.join holder;
          (* Uncontended, the same budget is ample. *)
          let _, cached =
            result_string store (query ~cache:false ~timeout:5. l.Store.key)
          in
          Alcotest.(check bool) "same query fine uncontended" false cached;
          (* And the error code reaches the wire as deadline_exceeded. *)
          let holder2 =
            Thread.create
              (fun () ->
                ignore
                  (Store.with_admission store (fun () -> Thread.delay 0.15)))
              ()
          in
          Thread.delay 0.02;
          let resp =
            match
              Server.handle_line store
                (Printf.sprintf
                   "{\"id\":1,\"req\":\"query\",\"dataset\":%S,\"algo\":\"hd-rrms\",\"r\":4,\"cache\":false,\"timeout\":0.01}"
                   l.Store.key)
            with
            | `Reply r -> r
            | `Shutdown _ -> Alcotest.fail "not a shutdown"
          in
          Alcotest.(check bool) "deadline_exceeded on the wire" true
            (Astring_contains.contains resp "\"code\":\"deadline_exceeded\"");
          Thread.join holder2))

(* ------------------------------------------------------------------ *)
(* Drain                                                              *)
(* ------------------------------------------------------------------ *)

let test_drain_refuses_new_solves () =
  with_counters (fun () ->
      with_csv ~n:80 (fun csv ->
          let store = Store.create () in
          let l = Store.load store csv in
          let cold, _ = result_string store (query l.Store.key) in
          Store.set_draining store;
          (* Cached answers still flow... *)
          let warm, cached = result_string store (query l.Store.key) in
          Alcotest.(check bool) "cache hits during drain" true cached;
          Alcotest.(check string) "and stay identical" cold warm;
          (* ...but new solves are refused with the draining code. *)
          (match Store.query store (query ~r:5 l.Store.key) with
          | Error `Draining -> ()
          | _ -> Alcotest.fail "draining store accepted a new solve");
          let resp =
            match
              Server.handle_line store
                (Printf.sprintf
                   "{\"id\":1,\"req\":\"query\",\"dataset\":%S,\"algo\":\"cube\",\"r\":3}"
                   l.Store.key)
            with
            | `Reply r -> r
            | `Shutdown _ -> Alcotest.fail "not a shutdown"
          in
          Alcotest.(check bool) "draining on the wire" true
            (Astring_contains.contains resp "\"code\":\"draining\"")))

(* Full socket drain: live sessions are EOFed after in-flight work
   settles, their references released, and the socket file removed. *)
let test_socket_drain_graceful () =
  with_csv ~n:80 (fun csv ->
      let sock =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "rrms_drain_%d.sock" (Unix.getpid ()))
      in
      if Sys.file_exists sock then Sys.remove sock;
      let store = Store.create () in
      let srv = Server.start store ~socket:sock in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists sock then Sys.remove sock)
        (fun () ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX sock);
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          output_string oc
            (Printf.sprintf "{\"id\":1,\"req\":\"load\",\"path\":%S,\"name\":\"d\"}\n"
               csv);
          flush oc;
          ignore (input_line ic);
          Server.drain ~grace:2. srv store;
          (* The drained server EOFs the session; its read side sees
             the connection close. *)
          (match input_line ic with
          | exception End_of_file -> ()
          | _line -> Alcotest.fail "session outlived the drain");
          Server.wait srv;
          Alcotest.(check bool) "socket file removed" false
            (Sys.file_exists sock);
          Alcotest.(check bool) "store is draining" true (Store.draining store);
          (try Unix.close fd with Unix.Unix_error _ -> ())))

(* ------------------------------------------------------------------ *)
(* Stale socket takeover                                              *)
(* ------------------------------------------------------------------ *)

let test_stale_socket_takeover () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rrms_stale_%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists sock then Sys.remove sock;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      (* Fabricate a SIGKILLed daemon: bind a listener, then close the
         descriptor without unlinking — the socket file stays behind
         with nothing accepting on it. *)
      let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind dead (Unix.ADDR_UNIX sock);
      Unix.listen dead 1;
      Unix.close dead;
      Alcotest.(check bool) "stale file present" true (Sys.file_exists sock);
      (* A restart must probe, detect the dead peer and take the path
         over. *)
      let store = Store.create () in
      let srv = Server.start store ~socket:sock in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      output_string oc "{\"id\":1,\"req\":\"ping\"}\n";
      flush oc;
      (match input_line ic with
      | line ->
          Alcotest.(check bool) "new daemon answers" true
            (Astring_contains.contains line "\"pong\":true")
      | exception End_of_file -> Alcotest.fail "no answer after takeover");
      (* A second server on the same, now-live path must refuse. *)
      (match Server.start (Store.create ()) ~socket:sock with
      | _ -> Alcotest.fail "double-bind on a live socket must fail"
      | exception Guard.Error.Guard_error (Guard.Error.Invalid_input _) -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Server.stop srv;
      Server.wait srv)

let suite =
  [
    Alcotest.test_case "blob roundtrip" `Quick test_blob_roundtrip;
    Alcotest.test_case "corrupt-blob corpus" `Quick test_corrupt_blob_corpus;
    Alcotest.test_case "torn-write fault" `Quick test_torn_write_fault;
    Alcotest.test_case "restart warm hit bit-identical (1/2/4 domains)"
      `Quick test_restart_warm_bit_identical;
    Alcotest.test_case "crash mid-write recovery" `Quick
      test_crash_mid_write_recovery;
    Alcotest.test_case "deadline covers queue wait" `Quick
      test_deadline_covers_queue_wait;
    Alcotest.test_case "drain refuses new solves" `Quick
      test_drain_refuses_new_solves;
    Alcotest.test_case "socket drain graceful" `Quick
      test_socket_drain_graceful;
    Alcotest.test_case "stale socket takeover" `Quick
      test_stale_socket_takeover;
  ]
