(* End-to-end tests for the high-dimensional algorithms: HD-RRMS,
   HD-GREEDY, the LP GREEDY baseline, and their relationships. *)

open Rrms_core

let random_points rng n m =
  Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))

let test_hd_rrms_budget_and_guarantee () =
  let rng = Rrms_rng.Rng.create 121 in
  for _ = 1 to 10 do
    let pts = random_points rng 60 3 in
    let r = 2 + Rrms_rng.Rng.int rng 4 in
    let res = Hd_rrms.solve ~gamma:3 pts ~r in
    Alcotest.(check bool) "within budget" true
      (Array.length res.Hd_rrms.selected <= r);
    Alcotest.(check bool) "non-empty" true (Array.length res.Hd_rrms.selected > 0);
    (* The true regret must respect Theorem 4's lifted bound. *)
    let true_regret = Regret.exact_lp ~selected:res.Hd_rrms.selected pts in
    Alcotest.(check bool)
      (Printf.sprintf "true regret %g <= guarantee %g" true_regret
         res.Hd_rrms.guarantee)
      true
      (true_regret <= res.Hd_rrms.guarantee +. 1e-6);
    (* eps_min is the discretized regret the binary search accepted. *)
    Alcotest.(check bool)
      (Printf.sprintf "discretized regret %g <= eps_min %g"
         res.Hd_rrms.discretized_regret res.Hd_rrms.eps_min)
      true
      (res.Hd_rrms.discretized_regret <= res.Hd_rrms.eps_min +. 1e-12)
  done

let test_hd_rrms_exact_solver_opt_on_grid () =
  (* With the exact set-cover solver, eps_min is optimal for the
     discretized functions: no subset of size <= r can do better.
     Check by brute force on tiny instances. *)
  let rng = Rrms_rng.Rng.create 122 in
  for _ = 1 to 10 do
    let n = 8 and r = 2 in
    let pts = random_points rng n 3 in
    let funcs = Discretize.grid ~gamma:2 ~m:3 in
    let sky = Rrms_skyline.Skyline.sfs pts in
    let sky_pts = Array.map (fun i -> pts.(i)) sky in
    let matrix = Regret_matrix.build ~funcs sky_pts in
    match Hd_rrms.solve_on_matrix ~solver:Mrst.Exact matrix ~r with
    | None -> Alcotest.fail "must find a solution"
    | Some (_, eps_min) ->
        (* Brute force all pairs of skyline rows. *)
        let s = Array.length sky in
        let best = ref infinity in
        for a = 0 to s - 1 do
          for b = a to s - 1 do
            let v = Regret_matrix.regret_of_rows matrix (if a = b then [| a |] else [| a; b |]) in
            if v < !best then best := v
          done
        done;
        Alcotest.(check bool)
          (Printf.sprintf "eps_min %g = brute force %g" eps_min !best)
          true
          (Float.abs (eps_min -. !best) <= 1e-12)
  done

let test_hd_rrms_monotone_gamma_quality () =
  (* A finer grid cannot make the Theorem-4 guarantee worse. *)
  let rng = Rrms_rng.Rng.create 123 in
  let pts = random_points rng 80 3 in
  let g2 = (Hd_rrms.solve ~gamma:2 pts ~r:4).Hd_rrms.guarantee in
  let g6 = (Hd_rrms.solve ~gamma:6 pts ~r:4).Hd_rrms.guarantee in
  Alcotest.(check bool)
    (Printf.sprintf "guarantee improves with γ: %g -> %g" g2 g6)
    true (g6 <= g2 +. 1e-9)

let test_hd_rrms_2d_against_exact () =
  (* On 2D inputs the HD machinery must approach the exact 2D optimum
     within its guarantee. *)
  let rng = Rrms_rng.Rng.create 124 in
  for _ = 1 to 10 do
    let pts = random_points rng 40 2 in
    let r = 2 + Rrms_rng.Rng.int rng 3 in
    (* Equation 11 and the Theorem-4 lift both assume the exact MRST
       oracle (the greedy cover may overshoot ε_min). *)
    let hd = Hd_rrms.solve ~gamma:8 ~solver:Mrst.Exact pts ~r in
    let opt = Rrms2d.solve pts ~r in
    let hd_true = Regret.exact_2d ~selected:hd.Hd_rrms.selected pts in
    (* ε_min is a lower bound on the optimum (Equation 11)... *)
    Alcotest.(check bool)
      (Printf.sprintf "eps_min %g <= optimal %g" hd.Hd_rrms.eps_min
         opt.Rrms2d.regret)
      true
      (hd.Hd_rrms.eps_min <= opt.Rrms2d.regret +. 1e-9);
    (* ...and the output quality respects Theorem 4 w.r.t. optimal. *)
    let c = Discretize.theorem4_c ~gamma:8 ~m:2 in
    let bound = (c *. opt.Rrms2d.regret) +. (1. -. c) in
    Alcotest.(check bool)
      (Printf.sprintf "true %g <= c·opt + (1-c) = %g" hd_true bound)
      true
      (hd_true <= bound +. 1e-9)
  done

let test_hd_rrms_with_random_discretization () =
  let rng = Rrms_rng.Rng.create 125 in
  let pts = random_points rng 50 3 in
  let funcs = Discretize.random rng ~count:40 ~m:3 in
  let res = Hd_rrms.solve ~funcs pts ~r:3 in
  Alcotest.(check bool) "budget" true (Array.length res.Hd_rrms.selected <= 3);
  Alcotest.(check bool) "discretized regret sane" true
    (res.Hd_rrms.discretized_regret >= 0. && res.Hd_rrms.discretized_regret <= 1.)

let test_hd_greedy_basics () =
  let rng = Rrms_rng.Rng.create 126 in
  let pts = random_points rng 60 4 in
  let res = Hd_greedy.solve ~gamma:3 pts ~r:5 in
  Alcotest.(check int) "exactly r" 5 (Array.length res.Hd_greedy.selected);
  Alcotest.(check bool) "regret in [0,1]" true
    (res.Hd_greedy.discretized_regret >= 0. && res.Hd_greedy.discretized_regret <= 1.)

let test_hd_greedy_monotone_in_r () =
  let rng = Rrms_rng.Rng.create 127 in
  let pts = random_points rng 60 3 in
  let prev = ref infinity in
  for r = 1 to 6 do
    let res = Hd_greedy.solve ~gamma:4 pts ~r in
    Alcotest.(check bool)
      (Printf.sprintf "greedy regret non-increasing (r=%d)" r)
      true
      (res.Hd_greedy.discretized_regret <= !prev +. 1e-12);
    prev := res.Hd_greedy.discretized_regret
  done

let test_hd_rrms_beats_or_ties_hd_greedy_on_grid () =
  (* With the exact oracle, HD-RRMS is optimal on the grid, so it cannot
     be worse than HD-GREEDY there. *)
  let rng = Rrms_rng.Rng.create 128 in
  for _ = 1 to 8 do
    let pts = random_points rng 30 3 in
    let r = 2 + Rrms_rng.Rng.int rng 3 in
    let rrms = Hd_rrms.solve ~gamma:3 ~solver:Mrst.Exact pts ~r in
    let greedy = Hd_greedy.solve ~gamma:3 pts ~r in
    Alcotest.(check bool)
      (Printf.sprintf "HD-RRMS(exact) %g <= HD-GREEDY %g"
         rrms.Hd_rrms.discretized_regret greedy.Hd_greedy.discretized_regret)
      true
      (rrms.Hd_rrms.discretized_regret
      <= greedy.Hd_greedy.discretized_regret +. 1e-9)
  done

let test_greedy_lp_basics () =
  let rng = Rrms_rng.Rng.create 129 in
  let pts = random_points rng 40 3 in
  let res = Greedy.solve pts ~r:4 in
  Alcotest.(check int) "exactly r" 4 (Array.length res.Greedy.selected);
  (* First pick is the max of the first attribute. *)
  let first = res.Greedy.selected.(0) in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "seed maximizes first attribute" true
        (p.(0) <= pts.(first).(0)))
    pts;
  Alcotest.(check bool) "regret in [0,1]" true
    (res.Greedy.regret_lp >= 0. && res.Greedy.regret_lp <= 1.)

let test_greedy_pathological_gadget () =
  (* §4.1: on the gadget, GREEDY (r=3) picks the three unit vectors and
     suffers ~1-2ε regret, while the optimal (corner + two units)
     achieves ~ε.  HD-RRMS must find something near the optimum. *)
  let epsilon = 0.2 in
  let rng = Rrms_rng.Rng.create 130 in
  let d = Rrms_dataset.Synthetic.greedy_pathological ~epsilon ~extra:30 rng in
  let pts = Rrms_dataset.Dataset.rows d in
  let greedy = Greedy.solve pts ~r:3 in
  (* GREEDY picks the unit vectors: regret = distance-driven 1-2ε. *)
  Alcotest.(check bool)
    (Printf.sprintf "GREEDY regret %g is large" greedy.Greedy.regret_lp)
    true
    (greedy.Greedy.regret_lp >= 0.5);
  let sel = Array.copy greedy.Greedy.selected in
  Array.sort compare sel;
  Alcotest.(check (array int)) "GREEDY picks the three unit vectors"
    [| 0; 1; 2 |] sel;
  (* The optimal-style set: corner t3 plus two unit vectors. *)
  let opt_regret = Regret.exact_lp ~selected:[| 3; 0; 1 |] pts in
  Alcotest.(check bool)
    (Printf.sprintf "optimal-style regret %g is small" opt_regret)
    true
    (opt_regret <= epsilon +. 1e-6);
  (* HD-RRMS includes the corner and beats GREEDY by a wide margin. *)
  let hd = Hd_rrms.solve ~gamma:5 pts ~r:3 in
  let hd_regret = Regret.exact_lp ~selected:hd.Hd_rrms.selected pts in
  Alcotest.(check bool)
    (Printf.sprintf "HD-RRMS regret %g << GREEDY regret %g" hd_regret
       greedy.Greedy.regret_lp)
    true
    (hd_regret < greedy.Greedy.regret_lp /. 2.)

let test_greedy_skyline_restriction () =
  let rng = Rrms_rng.Rng.create 131 in
  let pts = random_points rng 50 3 in
  let full = Greedy.solve pts ~r:3 in
  let sky = Greedy.solve ~restrict_to_skyline:true pts ~r:3 in
  (* Same greedy choices modulo tie-breaking: regret must be close. *)
  Alcotest.(check bool)
    (Printf.sprintf "restricted %g ~ full %g" sky.Greedy.regret_lp
       full.Greedy.regret_lp)
    true
    (Float.abs (sky.Greedy.regret_lp -. full.Greedy.regret_lp) <= 0.2)

let expect_invalid_input what f =
  try
    ignore (f ());
    Alcotest.fail (Printf.sprintf "expected %s failure" what)
  with
  | Rrms_guard.Guard.Error.Guard_error
      (Rrms_guard.Guard.Error.Invalid_input _) ->
      ()

let test_invalid_args () =
  expect_invalid_input "hd_rrms r=0" (fun () ->
      Hd_rrms.solve [| [| 1.; 1. |] |] ~r:0);
  expect_invalid_input "hd_greedy empty" (fun () ->
      Hd_greedy.solve [||] ~r:1);
  expect_invalid_input "greedy r=0" (fun () ->
      Greedy.solve [| [| 1. |] |] ~r:0)

let suite =
  [
    Alcotest.test_case "hd-rrms budget+guarantee" `Slow
      test_hd_rrms_budget_and_guarantee;
    Alcotest.test_case "hd-rrms exact = grid optimum" `Slow
      test_hd_rrms_exact_solver_opt_on_grid;
    Alcotest.test_case "hd-rrms guarantee monotone in γ" `Quick
      test_hd_rrms_monotone_gamma_quality;
    Alcotest.test_case "hd-rrms vs exact 2D" `Slow test_hd_rrms_2d_against_exact;
    Alcotest.test_case "hd-rrms custom discretization" `Quick
      test_hd_rrms_with_random_discretization;
    Alcotest.test_case "hd-greedy basics" `Quick test_hd_greedy_basics;
    Alcotest.test_case "hd-greedy monotone in r" `Quick test_hd_greedy_monotone_in_r;
    Alcotest.test_case "hd-rrms <= hd-greedy on grid" `Slow
      test_hd_rrms_beats_or_ties_hd_greedy_on_grid;
    Alcotest.test_case "greedy LP basics" `Quick test_greedy_lp_basics;
    Alcotest.test_case "greedy pathological gadget" `Slow
      test_greedy_pathological_gadget;
    Alcotest.test_case "greedy skyline restriction" `Quick
      test_greedy_skyline_restriction;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
  ]

let test_budget_variants () =
  (* Inflated acceptance: eps_min can only improve (or tie), the output
     may exceed r but never the Chvátal bound. *)
  let rng = Rrms_rng.Rng.create 132 in
  for _ = 1 to 10 do
    let pts = random_points rng 60 3 in
    let r = 2 + Rrms_rng.Rng.int rng 3 in
    let gamma = 3 in
    let strict = Hd_rrms.solve ~gamma ~budget:Hd_rrms.Strict pts ~r in
    let inflated = Hd_rrms.solve ~gamma ~budget:Hd_rrms.Inflated pts ~r in
    Alcotest.(check bool)
      (Printf.sprintf "inflated eps %g <= strict eps %g"
         inflated.Hd_rrms.eps_min strict.Hd_rrms.eps_min)
      true
      (inflated.Hd_rrms.eps_min <= strict.Hd_rrms.eps_min +. 1e-12);
    let funcs = Discretize.grid ~gamma ~m:3 in
    let cap =
      int_of_float
        (ceil (float_of_int r *. (log (float_of_int (Array.length funcs)) +. 1.)))
    in
    Alcotest.(check bool) "inflated size within Chvátal cap" true
      (Array.length inflated.Hd_rrms.selected <= max r cap);
    Alcotest.(check bool) "strict size within r" true
      (Array.length strict.Hd_rrms.selected <= r)
  done

let test_inflated_reaches_grid_optimum () =
  (* Under Inflated, eps_min <= the grid optimum for r (brute-forced on
     tiny instances), because a size-r cover always passes. *)
  let rng = Rrms_rng.Rng.create 133 in
  for _ = 1 to 10 do
    let pts = random_points rng 8 3 in
    let r = 2 in
    let funcs = Discretize.grid ~gamma:2 ~m:3 in
    let sky = Rrms_skyline.Skyline.sfs pts in
    let sky_pts = Array.map (fun i -> pts.(i)) sky in
    let matrix = Regret_matrix.build ~funcs sky_pts in
    let s = Array.length sky in
    let grid_opt = ref infinity in
    for a = 0 to s - 1 do
      for b = a to s - 1 do
        let rows = if a = b then [| a |] else [| a; b |] in
        let v = Regret_matrix.regret_of_rows matrix rows in
        if v < !grid_opt then grid_opt := v
      done
    done;
    let inflated = Hd_rrms.solve ~gamma:2 ~budget:Hd_rrms.Inflated pts ~r in
    Alcotest.(check bool)
      (Printf.sprintf "inflated eps %g <= grid opt %g" inflated.Hd_rrms.eps_min
         !grid_opt)
      true
      (inflated.Hd_rrms.eps_min <= !grid_opt +. 1e-12)
  done

let budget_suite =
  [
    Alcotest.test_case "budget variants" `Quick test_budget_variants;
    Alcotest.test_case "inflated reaches grid optimum" `Quick
      test_inflated_reaches_grid_optimum;
  ]

let test_greedy_seed_strategies () =
  (* On the §4.1 gadget, better seeding repairs GREEDY: Best_singleton
     and All_seeds both find the near-optimal corner-based set. *)
  let epsilon = 0.1 in
  let rng = Rrms_rng.Rng.create 134 in
  let d = Rrms_dataset.Synthetic.greedy_pathological ~epsilon ~extra:20 rng in
  let pts = Rrms_dataset.Dataset.rows d in
  let published = Greedy.solve ~seed:Greedy.First_attribute pts ~r:3 in
  let singleton = Greedy.solve ~seed:Greedy.Best_singleton pts ~r:3 in
  let all = Greedy.solve ~seed:Greedy.All_seeds pts ~r:3 in
  Alcotest.(check bool)
    (Printf.sprintf "singleton (%g) repairs published (%g)"
       singleton.Greedy.regret_lp published.Greedy.regret_lp)
    true
    (singleton.Greedy.regret_lp < published.Greedy.regret_lp /. 2.);
  Alcotest.(check bool)
    (Printf.sprintf "all-seeds (%g) <= singleton (%g)" all.Greedy.regret_lp
       singleton.Greedy.regret_lp)
    true
    (all.Greedy.regret_lp <= singleton.Greedy.regret_lp +. 1e-9)

let test_greedy_all_seeds_never_worse () =
  let rng = Rrms_rng.Rng.create 135 in
  for _ = 1 to 5 do
    let pts = random_points rng 25 3 in
    let r = 2 + Rrms_rng.Rng.int rng 2 in
    let published = Greedy.solve pts ~r in
    let all = Greedy.solve ~seed:Greedy.All_seeds pts ~r in
    Alcotest.(check bool)
      (Printf.sprintf "all-seeds %g <= published %g" all.Greedy.regret_lp
         published.Greedy.regret_lp)
      true
      (all.Greedy.regret_lp <= published.Greedy.regret_lp +. 1e-9)
  done

let seed_suite =
  [
    Alcotest.test_case "seed strategies (gadget)" `Slow
      test_greedy_seed_strategies;
    Alcotest.test_case "all-seeds never worse" `Slow
      test_greedy_all_seeds_never_worse;
  ]
