(* Tests for high-dimensional incremental maintenance. *)

open Rrms_core

let test_matches_from_scratch () =
  let rng = Rrms_rng.Rng.create 211 in
  let dyn = Dynamic_hd.create ~gamma:3 ~r:3 [||] in
  let reference = ref [] in
  for step = 1 to 40 do
    let p = Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.) in
    ignore (Dynamic_hd.insert dyn p);
    reference := p :: !reference;
    if step mod 10 = 0 then begin
      let points = Array.of_list (List.rev !reference) in
      let want = Hd_rrms.solve ~gamma:3 points ~r:3 in
      let want_regret = Regret.exact_lp ~selected:want.Hd_rrms.selected points in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "regret matches at step %d" step)
        want_regret (Dynamic_hd.regret dyn)
    end
  done

let test_dominated_absorbed () =
  let dyn =
    Dynamic_hd.create ~gamma:3 ~r:2 [| [| 1.; 1.; 1. |]; [| 0.5; 0.9; 0.2 |] |]
  in
  ignore (Dynamic_hd.regret dyn);
  let before = Dynamic_hd.recompute_count dyn in
  for _ = 1 to 10 do
    ignore (Dynamic_hd.insert dyn [| 0.2; 0.3; 0.4 |])
  done;
  ignore (Dynamic_hd.regret dyn);
  Alcotest.(check int) "dominated inserts absorbed" before
    (Dynamic_hd.recompute_count dyn);
  ignore (Dynamic_hd.insert dyn [| 2.; 0.; 0. |]);
  Alcotest.(check bool) "skyline insert dirties" true (Dynamic_hd.is_dirty dyn)

let test_remove_skyline_dirties () =
  let dyn =
    Dynamic_hd.create ~gamma:3 ~r:2
      [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.5; 0.; 0. |] |]
  in
  ignore (Dynamic_hd.regret dyn);
  let rc = Dynamic_hd.recompute_count dyn in
  (* Interior removal: no recompute. *)
  Dynamic_hd.remove dyn 2;
  ignore (Dynamic_hd.regret dyn);
  Alcotest.(check int) "interior removal free" rc (Dynamic_hd.recompute_count dyn);
  (* Skyline removal: recompute, and the answer reflects it. *)
  Dynamic_hd.remove dyn 0;
  let sel = Dynamic_hd.selection dyn in
  Alcotest.(check int) "one live skyline tuple selected" 1 (Array.length sel);
  Alcotest.(check int) "it is the remaining corner" 1 sel.(0)

let test_dimension_consistency () =
  let dyn = Dynamic_hd.create ~r:1 [||] in
  ignore (Dynamic_hd.insert dyn [| 1.; 2.; 3. |]);
  Alcotest.check_raises "dimension mismatch rejected"
    (Invalid_argument "Dynamic_hd: inconsistent tuple dimension") (fun () ->
      ignore (Dynamic_hd.insert dyn [| 1.; 2. |]))

(* Regression: removing a tuple that is the cached per-direction maximum
   must mark exactly its slots stale and rebuild them lazily from the
   live tuples — the buffer previously kept serving the dead handle.
   The oracle is a fresh instance over the same live tuples: its slot
   indices, mapped through the ascending-handle enumeration, must match
   (the lowest-handle tie-break is order-preserving under the map). *)
let direction_maxima_oracle dyn live_handles =
  let handles = List.sort compare live_handles in
  let pts =
    Array.of_list
      (List.map (fun h -> Option.get (Dynamic_hd.get dyn h)) handles)
  in
  let fresh = Dynamic_hd.create ~gamma:4 ~r:2 pts in
  let of_handle = Array.of_list handles in
  Array.map
    (fun slot -> if slot < 0 then -1 else of_handle.(slot))
    (Dynamic_hd.direction_maxima fresh)

let test_direction_maxima_after_removal () =
  let rng = Rrms_rng.Rng.create 217 in
  let dyn = Dynamic_hd.create ~gamma:4 ~r:2 [||] in
  let live = ref [] in
  for _ = 1 to 30 do
    let p = Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.) in
    live := Dynamic_hd.insert dyn p :: !live
  done;
  (* Delete, one after another, every handle the buffer currently
     points at — each removal invalidates the very slots that served
     it, the worst case for stale entries. *)
  for round = 1 to 4 do
    let maxima = Dynamic_hd.direction_maxima dyn in
    let victim = Array.fold_left max (-1) maxima in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: a maximum exists" round)
      true (victim >= 0);
    Dynamic_hd.remove dyn victim;
    live := List.filter (fun h -> h <> victim) !live;
    let got = Dynamic_hd.direction_maxima dyn in
    Array.iter
      (fun h ->
        Alcotest.(check bool)
          (Printf.sprintf "round %d: no stale handle" round)
          true (h <> victim))
      got;
    Alcotest.(check (array int))
      (Printf.sprintf "round %d: equals from-scratch scan" round)
      (direction_maxima_oracle dyn !live)
      got
  done

(* Property: over any interleaving of inserts and deletes, the
   incrementally maintained skyline is Skyline.sfs of the live tuples —
   the exact index sequence, not just the set. *)
let arbitrary_schedule m =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun (t, p) ->
             Printf.sprintf "%d:%s" t (Rrms_geom.Vec.to_string p))
           ops))
    QCheck.Gen.(
      list_size (int_range 5 60)
        (pair small_nat (array_size (return m) (float_range 0. 1.))))

let run_schedule dyn ops =
  let live = ref [] in
  List.iter
    (fun (tag, p) ->
      let n = List.length !live in
      if tag mod 3 = 0 && n > 1 then begin
        let h = List.nth !live (tag / 3 mod n) in
        Dynamic_hd.remove dyn h;
        live := List.filter (fun x -> x <> h) !live
      end
      else live := Dynamic_hd.insert dyn p :: !live)
    ops;
  List.sort compare !live

let prop_skyline_matches_sfs =
  QCheck.Test.make ~count:60
    ~name:"dynamic hd skyline ≡ sfs over interleaved insert/delete"
    (arbitrary_schedule 3)
    (fun ops ->
      let dyn = Dynamic_hd.create ~gamma:3 ~r:2 [||] in
      let handles = run_schedule dyn ops in
      let pts =
        Array.of_list
          (List.map (fun h -> Option.get (Dynamic_hd.get dyn h)) handles)
      in
      let want = Rrms_skyline.Skyline.sfs pts in
      let rank = Hashtbl.create 16 in
      List.iteri (fun i h -> Hashtbl.replace rank h i) handles;
      let got =
        Array.map (fun h -> Hashtbl.find rank h) (Dynamic_hd.skyline dyn)
      in
      got = want)

let suite =
  [
    Alcotest.test_case "matches from-scratch" `Quick test_matches_from_scratch;
    Alcotest.test_case "dominated absorbed" `Quick test_dominated_absorbed;
    Alcotest.test_case "skyline removal" `Quick test_remove_skyline_dirties;
    Alcotest.test_case "dimension consistency" `Quick test_dimension_consistency;
    Alcotest.test_case "direction maxima after removal" `Quick
      test_direction_maxima_after_removal;
    QCheck_alcotest.to_alcotest prop_skyline_matches_sfs;
  ]
