(* Determinism of the domain-pool kernels and correctness of the
   incremental MRST probe path.

   The contract under test: every parallel kernel returns bit-identical
   results with [domains = 1] (serial fallback) and [domains = 4]
   (three spawned workers plus the caller), and
   [Mrst.Incremental.solve] matches from-scratch [Mrst.solve] at every
   threshold, however the probe sequence moves. *)

open Rrms_core

let random_points rng ~n ~m =
  Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))

let anti_points rng ~n ~m =
  Rrms_dataset.Dataset.rows
    (Rrms_dataset.Dataset.normalize
       (Rrms_dataset.Synthetic.anticorrelated rng ~n ~m))

(* --- pool combinators ------------------------------------------------ *)

let test_parallel_for_covers () =
  List.iter
    (fun domains ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Rrms_parallel.parallel_for ~domains ~min_chunk:16 n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "every index ran exactly once (domains=%d)" domains)
        true
        (Array.for_all (fun h -> h = 1) hits))
    [ 1; 2; 4 ]

let test_map_array_matches_serial () =
  let a = Array.init 777 (fun i -> i) in
  let expected = Array.map (fun x -> (x * 7919) mod 1013) a in
  List.iter
    (fun domains ->
      let got =
        Rrms_parallel.map_array ~domains ~min_chunk:16
          (fun x -> (x * 7919) mod 1013)
          a
      in
      Alcotest.(check (array int))
        (Printf.sprintf "map_array (domains=%d)" domains)
        expected got)
    [ 1; 4 ]

let test_reduce_deterministic_floats () =
  (* Float addition is not associative, so identical results across
     domain counts prove the chunk layout is pool-size independent. *)
  let n = 5000 in
  let f i = 1. /. float_of_int (i + 1) in
  let run domains =
    Rrms_parallel.reduce ~domains ~min_chunk:64 ~neutral:0.
      ~combine:( +. ) n f
  in
  let serial = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "reduce bit-identical (domains=%d)" domains)
        serial (run domains))
    [ 2; 4 ]

let test_pool_exception_propagates () =
  Alcotest.check_raises "exception crosses the pool boundary"
    (Invalid_argument "boom") (fun () ->
      Rrms_parallel.parallel_for ~domains:4 ~min_chunk:1 64 (fun i ->
          if i = 63 then invalid_arg "boom"))

(* --- kernel determinism: serial vs 4 domains ------------------------- *)

let test_sfs_deterministic () =
  let rng = Rrms_rng.Rng.create 2024 in
  List.iter
    (fun (n, m) ->
      let pts = anti_points rng ~n ~m in
      let serial = Rrms_skyline.Skyline.sfs ~domains:1 pts in
      let parallel = Rrms_skyline.Skyline.sfs ~domains:4 pts in
      Alcotest.(check (array int))
        (Printf.sprintf "sfs identical (n=%d m=%d)" n m)
        serial parallel)
    [ (300, 3); (1500, 4); (997, 5) ]

let test_matrix_build_deterministic () =
  let rng = Rrms_rng.Rng.create 7 in
  let pts = random_points rng ~n:400 ~m:4 in
  let funcs = Discretize.grid ~gamma:3 ~m:4 in
  let m1 = Regret_matrix.build ~domains:1 ~funcs pts in
  let m4 = Regret_matrix.build ~domains:4 ~funcs pts in
  Alcotest.(check int) "rows" (Regret_matrix.rows m1) (Regret_matrix.rows m4);
  Alcotest.(check int) "cols" (Regret_matrix.cols m1) (Regret_matrix.cols m4);
  let identical = ref true in
  for i = 0 to Regret_matrix.rows m1 - 1 do
    for f = 0 to Regret_matrix.cols m1 - 1 do
      if Regret_matrix.get m1 i f <> Regret_matrix.get m4 i f then
        identical := false
    done
  done;
  Alcotest.(check bool) "every cell bit-identical" true !identical;
  Alcotest.(check (array (float 0.)))
    "distinct values identical"
    (Regret_matrix.distinct_values m1)
    (Regret_matrix.distinct_values m4)

let test_hd_rrms_deterministic () =
  let rng = Rrms_rng.Rng.create 99 in
  let pts = anti_points rng ~n:1200 ~m:4 in
  let r1 = Hd_rrms.solve ~gamma:3 ~domains:1 pts ~r:4 in
  let r4 = Hd_rrms.solve ~gamma:3 ~domains:4 pts ~r:4 in
  Alcotest.(check (array int))
    "selected identical" r1.Hd_rrms.selected r4.Hd_rrms.selected;
  Alcotest.(check (float 0.)) "eps_min identical" r1.Hd_rrms.eps_min
    r4.Hd_rrms.eps_min;
  Alcotest.(check (float 0.))
    "discretized regret identical" r1.Hd_rrms.discretized_regret
    r4.Hd_rrms.discretized_regret

let test_hd_greedy_deterministic () =
  let rng = Rrms_rng.Rng.create 123 in
  let pts = anti_points rng ~n:900 ~m:4 in
  let r1 = Hd_greedy.solve ~gamma:3 ~domains:1 pts ~r:5 in
  let r4 = Hd_greedy.solve ~gamma:3 ~domains:4 pts ~r:5 in
  Alcotest.(check (array int))
    "selected identical" r1.Hd_greedy.selected r4.Hd_greedy.selected;
  Alcotest.(check (float 0.))
    "regret identical" r1.Hd_greedy.discretized_regret
    r4.Hd_greedy.discretized_regret

let test_mrst_solve_deterministic () =
  let rng = Rrms_rng.Rng.create 5 in
  let pts = random_points rng ~n:200 ~m:3 in
  let funcs = Discretize.grid ~gamma:4 ~m:3 in
  let m = Regret_matrix.build ~funcs pts in
  List.iter
    (fun eps ->
      let opt_rows = Alcotest.(option (array int)) in
      Alcotest.check opt_rows
        (Printf.sprintf "Mrst.solve identical (eps=%g)" eps)
        (Mrst.solve ~domains:1 m ~eps)
        (Mrst.solve ~domains:4 m ~eps))
    [ 0.; 0.05; 0.2; 0.5; 1. ]

(* --- incremental MRST vs from-scratch -------------------------------- *)

(* Probe a zig-zag threshold sequence so the incremental prefix pointers
   both advance and retreat, including repeats and off-grid values. *)
let probe_sequence values rng =
  let nv = Array.length values in
  let probes = ref [] in
  for _ = 1 to 40 do
    let v = values.(Rrms_rng.Rng.int rng nv) in
    let jitter =
      match Rrms_rng.Rng.int rng 3 with
      | 0 -> v
      | 1 -> v +. 1e-9
      | _ -> Float.max 0. (v -. 1e-9)
    in
    probes := jitter :: !probes
  done;
  (* Make sure the extremes and an exact repeat are present. *)
  values.(0) :: values.(nv - 1) :: values.(nv - 1) :: !probes

let test_incremental_matches_scratch () =
  let rng = Rrms_rng.Rng.create 31337 in
  for trial = 1 to 8 do
    let n = 20 + Rrms_rng.Rng.int rng 80 in
    let m = 2 + Rrms_rng.Rng.int rng 2 in
    let pts = random_points rng ~n ~m in
    let funcs = Discretize.grid ~gamma:(2 + Rrms_rng.Rng.int rng 2) ~m in
    let matrix = Regret_matrix.build ~funcs pts in
    let inc = Mrst.Incremental.create matrix in
    let values = Regret_matrix.distinct_values matrix in
    List.iter
      (fun eps ->
        let scratch = Mrst.solve matrix ~eps in
        let incremental = Mrst.Incremental.solve inc ~eps in
        Alcotest.check
          Alcotest.(option (array int))
          (Printf.sprintf "trial %d eps=%g incremental = scratch" trial eps)
          scratch incremental)
      (probe_sequence values rng)
  done

let test_incremental_parallel_deterministic () =
  let rng = Rrms_rng.Rng.create 8080 in
  let pts = random_points rng ~n:150 ~m:3 in
  let funcs = Discretize.grid ~gamma:3 ~m:3 in
  let matrix = Regret_matrix.build ~funcs pts in
  let inc1 = Mrst.Incremental.create ~domains:1 matrix in
  let inc4 = Mrst.Incremental.create ~domains:4 matrix in
  let values = Regret_matrix.distinct_values matrix in
  Array.iter
    (fun eps ->
      Alcotest.check
        Alcotest.(option (array int))
        (Printf.sprintf "incremental domains 1 vs 4 (eps=%g)" eps)
        (Mrst.Incremental.solve ~domains:1 inc1 ~eps)
        (Mrst.Incremental.solve ~domains:4 inc4 ~eps))
    values

let test_solve_on_matrix_uses_incremental () =
  (* The binary search must agree with a hand-rolled search that only
     uses from-scratch probes — on matrices small enough to enumerate. *)
  let rng = Rrms_rng.Rng.create 4242 in
  for _ = 1 to 6 do
    let n = 10 + Rrms_rng.Rng.int rng 40 in
    let pts = random_points rng ~n ~m:3 in
    let funcs = Discretize.grid ~gamma:2 ~m:3 in
    let matrix = Regret_matrix.build ~funcs pts in
    let r = 1 + Rrms_rng.Rng.int rng 3 in
    let values = Regret_matrix.distinct_values matrix in
    let scratch_best = ref None in
    let low = ref 0 and high = ref (Array.length values - 1) in
    while !low <= !high do
      let mid = (!low + !high) / 2 in
      (match Mrst.solve matrix ~eps:values.(mid) with
      | Some rows when Array.length rows <= r ->
          scratch_best := Some (rows, values.(mid));
          high := mid - 1
      | Some _ | None -> low := mid + 1)
    done;
    let incremental = Hd_rrms.solve_on_matrix matrix ~r in
    Alcotest.check
      Alcotest.(option (pair (array int) (float 0.)))
      "binary search: incremental probes = from-scratch probes"
      !scratch_best incremental
  done

(* --- satellite regressions ------------------------------------------- *)

let test_bitset_inter_count () =
  let open Rrms_setcover in
  let a = Bitset.of_list 200 [ 0; 1; 62; 63; 64; 126; 199 ] in
  let b = Bitset.of_list 200 [ 1; 63; 100; 126; 198 ] in
  Alcotest.(check int) "inter_count" 3 (Bitset.inter_count a b);
  Alcotest.(check int) "inter_count symmetric" 3 (Bitset.inter_count b a);
  Alcotest.(check int)
    "inter + diff = count" (Bitset.count a)
    (Bitset.inter_count a b + Bitset.diff_count a ~minus:b);
  Alcotest.(check int) "empty inter" 0
    (Bitset.inter_count (Bitset.create 200) b)

let test_distinct_values_duplicates () =
  (* A duplicate-heavy matrix: every point tied, so one distinct value
     per column pattern — the single-pass dedup must collapse them. *)
  let pts = Array.make 50 [| 0.5; 0.5 |] in
  let funcs = Discretize.grid ~gamma:3 ~m:2 in
  let matrix = Regret_matrix.build ~funcs pts in
  let v = Regret_matrix.distinct_values matrix in
  Alcotest.(check bool) "non-empty" true (Array.length v > 0);
  for i = 0 to Array.length v - 2 do
    Alcotest.(check bool) "strictly ascending" true (v.(i) < v.(i + 1))
  done;
  (* All rows are identical, so the distinct set is one value per
     column at most. *)
  Alcotest.(check bool)
    "collapsed duplicates" true
    (Array.length v <= Regret_matrix.cols matrix)

let suite =
  [
    Alcotest.test_case "parallel_for covers every index" `Quick
      test_parallel_for_covers;
    Alcotest.test_case "map_array matches serial" `Quick
      test_map_array_matches_serial;
    Alcotest.test_case "reduce is pool-size independent" `Quick
      test_reduce_deterministic_floats;
    Alcotest.test_case "pool propagates exceptions" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "sfs: domains 1 = domains 4" `Quick
      test_sfs_deterministic;
    Alcotest.test_case "matrix build: domains 1 = domains 4" `Quick
      test_matrix_build_deterministic;
    Alcotest.test_case "hd-rrms: domains 1 = domains 4" `Quick
      test_hd_rrms_deterministic;
    Alcotest.test_case "hd-greedy: domains 1 = domains 4" `Quick
      test_hd_greedy_deterministic;
    Alcotest.test_case "mrst solve: domains 1 = domains 4" `Quick
      test_mrst_solve_deterministic;
    Alcotest.test_case "incremental probes = from-scratch (property)" `Quick
      test_incremental_matches_scratch;
    Alcotest.test_case "incremental: domains 1 = domains 4" `Quick
      test_incremental_parallel_deterministic;
    Alcotest.test_case "solve_on_matrix = scratch binary search" `Quick
      test_solve_on_matrix_uses_incremental;
    Alcotest.test_case "bitset inter_count" `Quick test_bitset_inter_count;
    Alcotest.test_case "distinct_values on duplicate-heavy matrix" `Quick
      test_distinct_values_duplicates;
  ]
