(* Determinism of the domain-pool kernels and correctness of the
   incremental MRST probe path.

   The contract under test: every parallel kernel returns bit-identical
   results with [domains = 1] (serial fallback) and [domains = 4]
   (three spawned workers plus the caller), and
   [Mrst.Incremental.solve] matches from-scratch [Mrst.solve] at every
   threshold, however the probe sequence moves. *)

open Rrms_core

let random_points rng ~n ~m =
  Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))

let anti_points rng ~n ~m =
  Rrms_dataset.Dataset.rows
    (Rrms_dataset.Dataset.normalize
       (Rrms_dataset.Synthetic.anticorrelated rng ~n ~m))

(* --- pool combinators ------------------------------------------------ *)

let test_parallel_for_covers () =
  List.iter
    (fun domains ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Rrms_parallel.parallel_for ~domains ~min_chunk:16 n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "every index ran exactly once (domains=%d)" domains)
        true
        (Array.for_all (fun h -> h = 1) hits))
    [ 1; 2; 4 ]

let test_map_array_matches_serial () =
  let a = Array.init 777 (fun i -> i) in
  let expected = Array.map (fun x -> (x * 7919) mod 1013) a in
  List.iter
    (fun domains ->
      let got =
        Rrms_parallel.map_array ~domains ~min_chunk:16
          (fun x -> (x * 7919) mod 1013)
          a
      in
      Alcotest.(check (array int))
        (Printf.sprintf "map_array (domains=%d)" domains)
        expected got)
    [ 1; 4 ]

let test_reduce_deterministic_floats () =
  (* Float addition is not associative, so identical results across
     domain counts prove the chunk layout is pool-size independent. *)
  let n = 5000 in
  let f i = 1. /. float_of_int (i + 1) in
  let run domains =
    Rrms_parallel.reduce ~domains ~min_chunk:64 ~neutral:0.
      ~combine:( +. ) n f
  in
  let serial = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "reduce bit-identical (domains=%d)" domains)
        serial (run domains))
    [ 2; 4 ]

let test_pool_exception_propagates () =
  Alcotest.check_raises "exception crosses the pool boundary"
    (Invalid_argument "boom") (fun () ->
      Rrms_parallel.parallel_for ~domains:4 ~min_chunk:1 64 (fun i ->
          if i = 63 then invalid_arg "boom"))

(* --- kernel determinism: serial vs 4 domains ------------------------- *)

let test_sfs_deterministic () =
  let rng = Rrms_rng.Rng.create 2024 in
  List.iter
    (fun (n, m) ->
      let pts = anti_points rng ~n ~m in
      let serial = Rrms_skyline.Skyline.sfs ~domains:1 pts in
      let parallel = Rrms_skyline.Skyline.sfs ~domains:4 pts in
      Alcotest.(check (array int))
        (Printf.sprintf "sfs identical (n=%d m=%d)" n m)
        serial parallel)
    [ (300, 3); (1500, 4); (997, 5) ]

let test_matrix_build_deterministic () =
  let rng = Rrms_rng.Rng.create 7 in
  let pts = random_points rng ~n:400 ~m:4 in
  let funcs = Discretize.grid ~gamma:3 ~m:4 in
  let m1 = Regret_matrix.build ~domains:1 ~funcs pts in
  let m4 = Regret_matrix.build ~domains:4 ~funcs pts in
  Alcotest.(check int) "rows" (Regret_matrix.rows m1) (Regret_matrix.rows m4);
  Alcotest.(check int) "cols" (Regret_matrix.cols m1) (Regret_matrix.cols m4);
  let identical = ref true in
  for i = 0 to Regret_matrix.rows m1 - 1 do
    for f = 0 to Regret_matrix.cols m1 - 1 do
      if Regret_matrix.get m1 i f <> Regret_matrix.get m4 i f then
        identical := false
    done
  done;
  Alcotest.(check bool) "every cell bit-identical" true !identical;
  Alcotest.(check (array (float 0.)))
    "distinct values identical"
    (Regret_matrix.distinct_values m1)
    (Regret_matrix.distinct_values m4)

let test_hd_rrms_deterministic () =
  let rng = Rrms_rng.Rng.create 99 in
  let pts = anti_points rng ~n:1200 ~m:4 in
  let r1 = Hd_rrms.solve ~gamma:3 ~domains:1 pts ~r:4 in
  let r4 = Hd_rrms.solve ~gamma:3 ~domains:4 pts ~r:4 in
  Alcotest.(check (array int))
    "selected identical" r1.Hd_rrms.selected r4.Hd_rrms.selected;
  Alcotest.(check (float 0.)) "eps_min identical" r1.Hd_rrms.eps_min
    r4.Hd_rrms.eps_min;
  Alcotest.(check (float 0.))
    "discretized regret identical" r1.Hd_rrms.discretized_regret
    r4.Hd_rrms.discretized_regret

let test_hd_greedy_deterministic () =
  let rng = Rrms_rng.Rng.create 123 in
  let pts = anti_points rng ~n:900 ~m:4 in
  let r1 = Hd_greedy.solve ~gamma:3 ~domains:1 pts ~r:5 in
  let r4 = Hd_greedy.solve ~gamma:3 ~domains:4 pts ~r:5 in
  Alcotest.(check (array int))
    "selected identical" r1.Hd_greedy.selected r4.Hd_greedy.selected;
  Alcotest.(check (float 0.))
    "regret identical" r1.Hd_greedy.discretized_regret
    r4.Hd_greedy.discretized_regret

let test_mrst_solve_deterministic () =
  let rng = Rrms_rng.Rng.create 5 in
  let pts = random_points rng ~n:200 ~m:3 in
  let funcs = Discretize.grid ~gamma:4 ~m:3 in
  let m = Regret_matrix.build ~funcs pts in
  List.iter
    (fun eps ->
      let opt_rows = Alcotest.(option (array int)) in
      Alcotest.check opt_rows
        (Printf.sprintf "Mrst.solve identical (eps=%g)" eps)
        (Mrst.solve ~domains:1 m ~eps)
        (Mrst.solve ~domains:4 m ~eps))
    [ 0.; 0.05; 0.2; 0.5; 1. ]

(* --- incremental MRST vs from-scratch -------------------------------- *)

(* Probe a zig-zag threshold sequence so the incremental prefix pointers
   both advance and retreat, including repeats and off-grid values. *)
let probe_sequence values rng =
  let nv = Array.length values in
  let probes = ref [] in
  for _ = 1 to 40 do
    let v = values.(Rrms_rng.Rng.int rng nv) in
    let jitter =
      match Rrms_rng.Rng.int rng 3 with
      | 0 -> v
      | 1 -> v +. 1e-9
      | _ -> Float.max 0. (v -. 1e-9)
    in
    probes := jitter :: !probes
  done;
  (* Make sure the extremes and an exact repeat are present. *)
  values.(0) :: values.(nv - 1) :: values.(nv - 1) :: !probes

let test_incremental_matches_scratch () =
  let rng = Rrms_rng.Rng.create 31337 in
  for trial = 1 to 8 do
    let n = 20 + Rrms_rng.Rng.int rng 80 in
    let m = 2 + Rrms_rng.Rng.int rng 2 in
    let pts = random_points rng ~n ~m in
    let funcs = Discretize.grid ~gamma:(2 + Rrms_rng.Rng.int rng 2) ~m in
    let matrix = Regret_matrix.build ~funcs pts in
    let inc = Mrst.Incremental.create matrix in
    let values = Regret_matrix.distinct_values matrix in
    List.iter
      (fun eps ->
        let scratch = Mrst.solve matrix ~eps in
        let incremental = Mrst.Incremental.solve inc ~eps in
        Alcotest.check
          Alcotest.(option (array int))
          (Printf.sprintf "trial %d eps=%g incremental = scratch" trial eps)
          scratch incremental)
      (probe_sequence values rng)
  done

let test_incremental_parallel_deterministic () =
  let rng = Rrms_rng.Rng.create 8080 in
  let pts = random_points rng ~n:150 ~m:3 in
  let funcs = Discretize.grid ~gamma:3 ~m:3 in
  let matrix = Regret_matrix.build ~funcs pts in
  let inc1 = Mrst.Incremental.create ~domains:1 matrix in
  let inc4 = Mrst.Incremental.create ~domains:4 matrix in
  let values = Regret_matrix.distinct_values matrix in
  Array.iter
    (fun eps ->
      Alcotest.check
        Alcotest.(option (array int))
        (Printf.sprintf "incremental domains 1 vs 4 (eps=%g)" eps)
        (Mrst.Incremental.solve ~domains:1 inc1 ~eps)
        (Mrst.Incremental.solve ~domains:4 inc4 ~eps))
    values

let test_solve_on_matrix_uses_incremental () =
  (* The binary search must agree with a hand-rolled search that only
     uses from-scratch probes — on matrices small enough to enumerate. *)
  let rng = Rrms_rng.Rng.create 4242 in
  for _ = 1 to 6 do
    let n = 10 + Rrms_rng.Rng.int rng 40 in
    let pts = random_points rng ~n ~m:3 in
    let funcs = Discretize.grid ~gamma:2 ~m:3 in
    let matrix = Regret_matrix.build ~funcs pts in
    let r = 1 + Rrms_rng.Rng.int rng 3 in
    let values = Regret_matrix.distinct_values matrix in
    let scratch_best = ref None in
    let low = ref 0 and high = ref (Array.length values - 1) in
    while !low <= !high do
      let mid = (!low + !high) / 2 in
      (match Mrst.solve matrix ~eps:values.(mid) with
      | Some rows when Array.length rows <= r ->
          scratch_best := Some (rows, values.(mid));
          high := mid - 1
      | Some _ | None -> low := mid + 1)
    done;
    let incremental = Hd_rrms.solve_on_matrix matrix ~r in
    Alcotest.check
      Alcotest.(option (pair (array int) (float 0.)))
      "binary search: incremental probes = from-scratch probes"
      !scratch_best incremental
  done

(* --- flat layout vs boxed reference ---------------------------------- *)

(* Every accessor of the flat row-major matrix must agree bit-for-bit
   with the obvious boxed (row-of-arrays) implementation, on the full
   matrix, on a permuted column view, and on the view's materialized
   copy. *)
let test_flat_matrix_matches_boxed () =
  let rng = Rrms_rng.Rng.create 606 in
  let pts = random_points rng ~n:120 ~m:3 in
  let funcs = Discretize.grid ~gamma:3 ~m:3 in
  let matrix = Regret_matrix.build ~funcs pts in
  let s = Regret_matrix.rows matrix and k = Regret_matrix.cols matrix in
  let boxed =
    Array.init s (fun i ->
        Array.init k (fun f -> Regret_matrix.get matrix i f))
  in
  (* blit_row = the boxed row, bit-for-bit. *)
  let row = Array.make k nan in
  let blit_ok = ref true in
  for i = 0 to s - 1 do
    Regret_matrix.blit_row matrix i row;
    if row <> boxed.(i) then blit_ok := false
  done;
  Alcotest.(check bool) "blit_row = boxed rows" true !blit_ok;
  (* regret_of_rows = boxed column-mins then max. *)
  let some_rows = [| 0; 2; 5; s - 1 |] in
  let mins = Array.make k infinity in
  Array.iter
    (fun i ->
      for f = 0 to k - 1 do
        if boxed.(i).(f) < mins.(f) then mins.(f) <- boxed.(i).(f)
      done)
    some_rows;
  let expected = Array.fold_left Float.max neg_infinity mins in
  Alcotest.(check (float 0.))
    "regret_of_rows = boxed reference" expected
    (Regret_matrix.regret_of_rows matrix some_rows);
  (* row_worst_against / row_update_mins = their boxed references. *)
  let current = Array.copy mins in
  let worst_ok = ref true in
  for i = 0 to s - 1 do
    let w = ref neg_infinity in
    for f = 0 to k - 1 do
      let v = Float.min current.(f) boxed.(i).(f) in
      if v > !w then w := v
    done;
    if Regret_matrix.row_worst_against matrix i current <> !w then
      worst_ok := false
  done;
  Alcotest.(check bool) "row_worst_against = boxed reference" true !worst_ok;
  let updated = Array.copy current in
  Regret_matrix.row_update_mins matrix 3 updated;
  let expected_mins =
    Array.init k (fun f ->
        if boxed.(3).(f) < current.(f) then boxed.(3).(f) else current.(f))
  in
  Alcotest.(check (array (float 0.)))
    "row_update_mins = boxed reference" expected_mins updated;
  (* A permuted column-subset view, and its materialized copy. *)
  let cols = [| k - 1; 0; k / 2 |] in
  let view = Regret_matrix.select_cols matrix cols in
  Alcotest.(check bool) "select_cols is a view" true
    (Regret_matrix.is_view view);
  let mat = Regret_matrix.materialize view in
  Alcotest.(check bool) "materialize is not a view" false
    (Regret_matrix.is_view mat);
  let view_ok = ref true in
  for i = 0 to s - 1 do
    Array.iteri
      (fun f' f ->
        if
          Regret_matrix.get view i f' <> boxed.(i).(f)
          || Regret_matrix.get mat i f' <> boxed.(i).(f)
        then view_ok := false)
      cols
  done;
  Alcotest.(check bool) "view and materialized cells = boxed subset" true
    !view_ok;
  (* distinct_values = sort + dedup of every cell, and the result is
     cached (same physical array on the second call). *)
  let all = Array.concat (Array.to_list boxed) in
  Array.sort Float.compare all;
  let dedup = ref [] in
  Array.iter
    (fun v ->
      match !dedup with
      | w :: _ when Float.compare w v = 0 -> ()
      | _ -> dedup := v :: !dedup)
    all;
  let expected_distinct = Array.of_list (List.rev !dedup) in
  Alcotest.(check (array (float 0.)))
    "distinct_values = sorted dedup of boxed cells" expected_distinct
    (Regret_matrix.distinct_values matrix);
  Alcotest.(check bool) "distinct_values cached" true
    (Regret_matrix.distinct_values matrix
    == Regret_matrix.distinct_values matrix)

let test_select_cols_guard_errors () =
  let rng = Rrms_rng.Rng.create 607 in
  let pts = random_points rng ~n:30 ~m:3 in
  let funcs = Discretize.grid ~gamma:2 ~m:3 in
  let matrix = Regret_matrix.build ~funcs pts in
  let expect_invalid label f =
    match f () with
    | exception Rrms_guard.Guard.Error.Guard_error
        (Rrms_guard.Guard.Error.Invalid_input _) ->
        ()
    | _ -> Alcotest.failf "%s: expected Guard_error Invalid_input" label
  in
  expect_invalid "empty column set" (fun () ->
      Regret_matrix.select_cols matrix [||]);
  expect_invalid "column out of range" (fun () ->
      Regret_matrix.select_cols matrix [| Regret_matrix.cols matrix |]);
  expect_invalid "negative column" (fun () ->
      Regret_matrix.select_cols matrix [| -1 |])

(* --- Fsort vs Array.sort Float.compare -------------------------------- *)

let bits x = Int64.bits_of_float x

let test_fsort_matches_reference () =
  let rng = Rrms_rng.Rng.create 51 in
  (* [Float.compare] calls -0. and +0. equal, so [Array.sort] (unstable)
     leaves signed zeros in unspecified order; any valid output agrees
     with the reference under [Float.compare] elementwise and preserves
     the input bit patterns as a multiset. *)
  let check_one label a =
    let b = Array.copy a in
    let in_bits = Array.map bits a in
    Fsort.sort a;
    Array.sort Float.compare b;
    Alcotest.(check bool)
      (label ^ ": Float.compare order")
      true
      (Array.for_all2 (fun x y -> Float.compare x y = 0) a b);
    let out_bits = Array.map bits a in
    Array.sort Int64.compare in_bits;
    Array.sort Int64.compare out_bits;
    Alcotest.(check bool)
      (label ^ ": permutation of the input bits")
      true (in_bits = out_bits)
  in
  check_one "empty" [||];
  check_one "singleton" [| 0.7 |];
  check_one "signed zeros interleaved" [| 0.; -0.; 1.; -0.; 0.; -0. |];
  check_one "fallback: negatives and >= 2" [| 3.; -1.; 0.5; 2.; 1.9999 |];
  check_one "fallback: infinities and nan" [| infinity; 0.1; nan; 0. |];
  for trial = 1 to 20 do
    let n = 1 + Rrms_rng.Rng.int rng 400 in
    let a =
      Array.init n (fun _ ->
          (* In-range values with heavy duplication and some zeros. *)
          match Rrms_rng.Rng.int rng 10 with
          | 0 -> 0.
          | 1 -> -0.
          | 2 -> float_of_int (Rrms_rng.Rng.int rng 4) /. 2.
          | _ -> Rrms_rng.Rng.float rng 2.)
    in
    check_one (Printf.sprintf "random trial %d" trial) a
  done

let test_fsort_pairs_matches_reference () =
  let rng = Rrms_rng.Rng.create 52 in
  for trial = 1 to 20 do
    let n = 1 + Rrms_rng.Rng.int rng 300 in
    (* Duplicate-heavy values so the index tie-break is exercised. *)
    let vals =
      Array.init n (fun _ -> float_of_int (Rrms_rng.Rng.int rng 8) /. 4.)
    in
    let idx = Array.init n Fun.id in
    let pairs = Array.init n (fun q -> (vals.(q), idx.(q))) in
    Array.sort
      (fun (v1, i1) (v2, i2) ->
        let c = Float.compare v1 v2 in
        if c <> 0 then c else compare i1 i2)
      pairs;
    Fsort.sort_pairs vals idx;
    Alcotest.(check bool)
      (Printf.sprintf "sort_pairs trial %d" trial)
      true
      (Array.for_all2
         (fun (v, i) q -> bits vals.(q) = bits v && idx.(q) = i)
         pairs
         (Array.init n Fun.id))
  done

(* --- batched threshold schedules -------------------------------------- *)

(* advance_many must resolve an ascending schedule to exactly the
   positions a sequence of single advances would reach, from any
   starting state, and solve_at at those positions must return exactly
   what per-threshold solves (and from-scratch solves) return. *)
let test_advance_many_matches_advance_sequence () =
  let rng = Rrms_rng.Rng.create 90210 in
  for trial = 1 to 8 do
    let n = 15 + Rrms_rng.Rng.int rng 60 in
    let m = 2 + Rrms_rng.Rng.int rng 2 in
    let pts = random_points rng ~n ~m in
    let funcs = Discretize.grid ~gamma:(2 + Rrms_rng.Rng.int rng 2) ~m in
    let matrix = Regret_matrix.build ~funcs pts in
    let values = Regret_matrix.distinct_values matrix in
    let nv = Array.length values in
    let batched = Mrst.Incremental.create matrix in
    let stepped = Mrst.Incremental.create matrix in
    (* Random shared starting state: the first schedule entry must move
       pointers in both directions. *)
    let start = values.(Rrms_rng.Rng.int rng nv) in
    Mrst.Incremental.advance batched ~eps:start;
    Mrst.Incremental.advance stepped ~eps:start;
    let len = 1 + Rrms_rng.Rng.int rng 6 in
    let schedule =
      Array.init len (fun _ ->
          let v = values.(Rrms_rng.Rng.int rng nv) in
          match Rrms_rng.Rng.int rng 3 with
          | 0 -> v +. 1e-9
          | 1 -> Float.max 0. (v -. 1e-9)
          | _ -> v)
    in
    Array.sort Float.compare schedule;
    let res = Mrst.Incremental.advance_many batched ~eps:schedule in
    Array.iteri
      (fun j eps ->
        let from_batch = Mrst.Incremental.solve_at batched ~pos:res.(j) in
        let from_steps = Mrst.Incremental.solve stepped ~eps in
        let scratch = Mrst.solve matrix ~eps in
        let check msg = Alcotest.check Alcotest.(option (array int)) msg in
        check
          (Printf.sprintf "trial %d step %d: batched = stepped" trial j)
          from_steps from_batch;
        check
          (Printf.sprintf "trial %d step %d: batched = scratch" trial j)
          scratch from_batch)
      schedule
  done;
  let matrix =
    Regret_matrix.build
      ~funcs:(Discretize.grid ~gamma:2 ~m:2)
      (random_points rng ~n:10 ~m:2)
  in
  let inc = Mrst.Incremental.create matrix in
  Alcotest.check_raises "empty schedule rejected"
    (Invalid_argument "Mrst.Incremental.advance_many: empty schedule")
    (fun () -> ignore (Mrst.Incremental.advance_many inc ~eps:[||]));
  Alcotest.check_raises "descending schedule rejected"
    (Invalid_argument "Mrst.Incremental.advance_many: schedule not ascending")
    (fun () ->
      ignore (Mrst.Incremental.advance_many inc ~eps:[| 0.5; 0.2 |]))

(* --- satellite regressions ------------------------------------------- *)

let test_bitset_inter_count () =
  let open Rrms_setcover in
  let a = Bitset.of_list 200 [ 0; 1; 62; 63; 64; 126; 199 ] in
  let b = Bitset.of_list 200 [ 1; 63; 100; 126; 198 ] in
  Alcotest.(check int) "inter_count" 3 (Bitset.inter_count a b);
  Alcotest.(check int) "inter_count symmetric" 3 (Bitset.inter_count b a);
  Alcotest.(check int)
    "inter + diff = count" (Bitset.count a)
    (Bitset.inter_count a b + Bitset.diff_count a ~minus:b);
  Alcotest.(check int) "empty inter" 0
    (Bitset.inter_count (Bitset.create 200) b)

let test_distinct_values_duplicates () =
  (* A duplicate-heavy matrix: every point tied, so one distinct value
     per column pattern — the single-pass dedup must collapse them. *)
  let pts = Array.make 50 [| 0.5; 0.5 |] in
  let funcs = Discretize.grid ~gamma:3 ~m:2 in
  let matrix = Regret_matrix.build ~funcs pts in
  let v = Regret_matrix.distinct_values matrix in
  Alcotest.(check bool) "non-empty" true (Array.length v > 0);
  for i = 0 to Array.length v - 2 do
    Alcotest.(check bool) "strictly ascending" true (v.(i) < v.(i + 1))
  done;
  (* All rows are identical, so the distinct set is one value per
     column at most. *)
  Alcotest.(check bool)
    "collapsed duplicates" true
    (Array.length v <= Regret_matrix.cols matrix)

let suite =
  [
    Alcotest.test_case "parallel_for covers every index" `Quick
      test_parallel_for_covers;
    Alcotest.test_case "map_array matches serial" `Quick
      test_map_array_matches_serial;
    Alcotest.test_case "reduce is pool-size independent" `Quick
      test_reduce_deterministic_floats;
    Alcotest.test_case "pool propagates exceptions" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "sfs: domains 1 = domains 4" `Quick
      test_sfs_deterministic;
    Alcotest.test_case "matrix build: domains 1 = domains 4" `Quick
      test_matrix_build_deterministic;
    Alcotest.test_case "hd-rrms: domains 1 = domains 4" `Quick
      test_hd_rrms_deterministic;
    Alcotest.test_case "hd-greedy: domains 1 = domains 4" `Quick
      test_hd_greedy_deterministic;
    Alcotest.test_case "mrst solve: domains 1 = domains 4" `Quick
      test_mrst_solve_deterministic;
    Alcotest.test_case "incremental probes = from-scratch (property)" `Quick
      test_incremental_matches_scratch;
    Alcotest.test_case "incremental: domains 1 = domains 4" `Quick
      test_incremental_parallel_deterministic;
    Alcotest.test_case "solve_on_matrix = scratch binary search" `Quick
      test_solve_on_matrix_uses_incremental;
    Alcotest.test_case "bitset inter_count" `Quick test_bitset_inter_count;
    Alcotest.test_case "distinct_values on duplicate-heavy matrix" `Quick
      test_distinct_values_duplicates;
    Alcotest.test_case "flat matrix = boxed reference" `Quick
      test_flat_matrix_matches_boxed;
    Alcotest.test_case "select_cols guard errors" `Quick
      test_select_cols_guard_errors;
    Alcotest.test_case "fsort = Array.sort Float.compare" `Quick
      test_fsort_matches_reference;
    Alcotest.test_case "fsort pairs = comparator sort" `Quick
      test_fsort_pairs_matches_reference;
    Alcotest.test_case "advance_many = sequence of advances" `Quick
      test_advance_many_matches_advance_sequence;
  ]
