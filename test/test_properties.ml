(* Cross-module property-based tests (qcheck, registered via
   QCheck_alcotest).  Each property states an invariant that ties two or
   more modules together; module-local properties live in the per-module
   suites. *)

open Rrms_core

(* --------------------------- generators --------------------------- *)

let point_gen m = QCheck.Gen.(array_size (return m) (float_range 0. 1.))

let points_gen ?(min_n = 1) ?(max_n = 60) m =
  QCheck.Gen.(
    let* n = int_range min_n max_n in
    array_size (return n) (point_gen m))

let arbitrary_points ?min_n ?max_n m =
  QCheck.make
    ~print:(fun pts ->
      String.concat ";"
        (Array.to_list (Array.map Rrms_geom.Vec.to_string pts)))
    (points_gen ?min_n ?max_n m)

let points2_and_r =
  QCheck.make
    ~print:(fun (pts, r) ->
      Printf.sprintf "r=%d pts=%s" r
        (String.concat ";"
           (Array.to_list (Array.map Rrms_geom.Vec.to_string pts))))
    QCheck.Gen.(
      let* pts = points_gen ~min_n:2 ~max_n:40 2 in
      let* r = int_range 1 5 in
      return (pts, r))

(* ------------------------------ skyline --------------------------- *)

let prop_skyline_algorithms_agree =
  QCheck.Test.make ~count:100 ~name:"bnl and sfs return the same point set"
    (arbitrary_points 3)
    (fun pts ->
      let key a =
        let l = Array.to_list (Array.map (fun i -> pts.(i)) a) in
        List.sort compare l
      in
      key (Rrms_skyline.Skyline.bnl pts) = key (Rrms_skyline.Skyline.sfs pts))

let prop_skyline_members_non_dominated =
  QCheck.Test.make ~count:100 ~name:"skyline members are non-dominated"
    (arbitrary_points 4)
    (fun pts ->
      Array.for_all
        (fun i -> Rrms_skyline.Skyline.is_skyline_point pts i)
        (Rrms_skyline.Skyline.sfs pts))

let prop_hull_subset_of_skyline =
  QCheck.Test.make ~count:100 ~name:"2D maxima hull ⊆ skyline"
    (arbitrary_points 2)
    (fun pts ->
      let sky = Array.to_list (Rrms_skyline.Skyline.two_d pts) in
      let sky_pts = List.map (fun i -> pts.(i)) sky in
      Array.for_all
        (fun v -> List.mem pts.(v) sky_pts)
        (Rrms_geom.Hull2d.vertices (Rrms_geom.Hull2d.build pts)))

(* ------------------------------ regret ---------------------------- *)

let prop_regret_monotone_in_selection =
  QCheck.Test.make ~count:100
    ~name:"adding a tuple never increases the regret" points2_and_r
    (fun (pts, _) ->
      let n = Array.length pts in
      n < 2
      ||
      let small = [| 0 |] in
      let large = [| 0; n - 1 |] in
      Regret.exact_2d ~selected:large pts
      <= Regret.exact_2d ~selected:small pts +. 1e-9)

let prop_single_function_bounded_by_exact =
  QCheck.Test.make ~count:100
    ~name:"per-function regret <= exact maximum regret" points2_and_r
    (fun (pts, _) ->
      let selected = [| 0 |] in
      let exact = Regret.exact_2d ~selected pts in
      List.for_all
        (fun phi ->
          let w = Rrms_geom.Polar.weight_of_angle_2d phi in
          Regret.for_function ~points:pts ~selected w <= exact +. 1e-9)
        [ 0.; 0.3; 0.7; 1.1; Float.pi /. 2. ])

let prop_regret_in_unit_interval =
  QCheck.Test.make ~count:100 ~name:"regret ratio lies in [0, 1]"
    points2_and_r
    (fun (pts, _) ->
      let e = Regret.exact_2d ~selected:[| 0 |] pts in
      e >= 0. && e <= 1. +. 1e-12)

(* ------------------------------ 2D DP ----------------------------- *)

let prop_published_never_beats_exact =
  QCheck.Test.make ~count:60
    ~name:"published 2D-RRMS regret >= exact variant's" points2_and_r
    (fun (pts, r) ->
      let a = (Rrms2d.solve pts ~r).Rrms2d.regret in
      let b = (Rrms2d.solve_exact pts ~r).Rrms2d.regret in
      a >= b -. 1e-9)

let prop_exact_weight_dominates =
  QCheck.Test.make ~count:60
    ~name:"corrected edge weight >= published edge weight"
    (arbitrary_points ~min_n:3 ~max_n:30 2)
    (fun pts ->
      let ctx = Rrms2d.make_ctx pts in
      let s = Rrms2d.skyline_size ctx in
      let ok = ref true in
      for i = -1 to s - 1 do
        for j = i + 1 to s do
          if Rrms2d.edge_weight_exact ctx i j < Rrms2d.edge_weight ctx i j -. 1e-12
          then ok := false
        done
      done;
      !ok)

let prop_dp_value_bounds_true_regret =
  QCheck.Test.make ~count:60
    ~name:"exact DP objective upper-bounds the selection's regret"
    points2_and_r
    (fun (pts, r) ->
      let res = Rrms2d.solve_exact pts ~r in
      res.Rrms2d.regret <= res.Rrms2d.dp_value +. 1e-9)

let prop_sweepline_agrees_with_exact =
  QCheck.Test.make ~count:40 ~name:"sweepline optimum = exact DP optimum"
    points2_and_r
    (fun (pts, r) ->
      let a = (Sweepline.solve pts ~r).Sweepline.regret in
      let b = (Rrms2d.solve_exact pts ~r).Rrms2d.regret in
      Float.abs (a -. b) <= 1e-9)

(* ------------------------------ HD -------------------------------- *)

let prop_hd_rrms_respects_budget_and_guarantee =
  QCheck.Test.make ~count:30
    ~name:"HD-RRMS: budget respected and regret within Theorem 4 bound"
    (QCheck.make
       QCheck.Gen.(
         let* pts = points_gen ~min_n:4 ~max_n:40 3 in
         let* r = int_range 1 4 in
         return (pts, r)))
    (fun (pts, r) ->
      let res = Hd_rrms.solve ~gamma:3 pts ~r in
      Array.length res.Hd_rrms.selected <= r
      && Array.length res.Hd_rrms.selected > 0
      && Regret.exact_lp ~selected:res.Hd_rrms.selected pts
         <= res.Hd_rrms.guarantee +. 1e-6)

let prop_discretized_regret_lower_bounds_exact =
  QCheck.Test.make ~count:30
    ~name:"grid regret of a set lower-bounds its exact regret"
    (arbitrary_points ~min_n:3 ~max_n:40 3)
    (fun pts ->
      let funcs = Discretize.grid ~gamma:3 ~m:3 in
      let matrix = Regret_matrix.build ~funcs pts in
      let selected = [| 0; Array.length pts - 1 |] in
      Regret_matrix.regret_of_rows matrix selected
      <= Regret.exact_lp ~selected pts +. 1e-9)

(* --------------------------- LP / simplex ------------------------- *)

let prop_point_regret_lp_bounds =
  QCheck.Test.make ~count:80
    ~name:"LP point regret lies in [0,1] and is 0 for dominated points"
    (arbitrary_points ~min_n:2 ~max_n:20 3)
    (fun pts ->
      let set = [| pts.(0) |] in
      let v = Regret.point_regret_lp ~set pts.(Array.length pts - 1) in
      v >= 0. && v <= 1.
      && Regret.point_regret_lp ~set:[| pts.(0) |]
           (Array.map (fun x -> x /. 2.) pts.(0))
         <= 1e-9)

(* --------------------------- discretize --------------------------- *)

let prop_grid_directions_unit_nonneg =
  QCheck.Test.make ~count:40 ~name:"grid directions are unit and non-negative"
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 2 5)))
    (fun (gamma, m) ->
      Array.for_all
        (fun v ->
          Float.abs (Rrms_geom.Vec.norm v -. 1.) < 1e-9
          && Array.for_all (fun x -> x >= -1e-12) v)
        (Discretize.grid ~gamma ~m))

let prop_theorem4_bound_shape =
  QCheck.Test.make ~count:60 ~name:"Theorem 4: 0 < c <= 1 and bound(eps)>=eps"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 12) (int_range 2 8) (float_range 0. 1.)))
    (fun (gamma, m, eps) ->
      let c = Discretize.theorem4_c ~gamma ~m in
      let bound = Discretize.theorem4_bound ~gamma ~m ~eps in
      c > 0. && c <= 1. +. 1e-12 && bound >= eps -. 1e-12 && bound <= 1. +. 1e-12)

(* --------------------- maintenance / serving ---------------------- *)

let prop_dynamic2d_equals_scratch =
  QCheck.Test.make ~count:30
    ~name:"Dynamic2d insert stream matches from-scratch solve"
    (QCheck.make
       QCheck.Gen.(
         let* pts = points_gen ~min_n:3 ~max_n:40 2 in
         let* r = int_range 1 3 in
         return (pts, r)))
    (fun (pts, r) ->
      let dyn = Dynamic2d.create ~r [||] in
      Array.iter (fun p -> ignore (Dynamic2d.insert dyn p)) pts;
      let scratch = (Rrms2d.solve_exact pts ~r).Rrms2d.regret in
      Float.abs (Dynamic2d.regret dyn -. scratch) <= 1e-9)

let prop_onion_top1_exact =
  QCheck.Test.make ~count:50 ~name:"Onion top-1 equals the true maximum"
    (QCheck.make
       QCheck.Gen.(
         let* pts = points_gen ~min_n:1 ~max_n:80 2 in
         let* phi = float_range 0.01 1.55 in
         return (pts, phi)))
    (fun (pts, phi) ->
      let onion = Onion.build ~max_layers:1 pts in
      let w = Rrms_geom.Polar.weight_of_angle_2d phi in
      let got = Rrms_geom.Vec.dot w pts.(Onion.top1 onion w) in
      let want = Rrms_geom.Vec.max_score w pts in
      Float.abs (got -. want) <= 1e-9)

let prop_kernel_zero_on_grid =
  QCheck.Test.make ~count:30
    ~name:"ε-kernel answers every grid direction with zero regret"
    (QCheck.make
       QCheck.Gen.(
         let* pts = points_gen ~min_n:2 ~max_n:60 3 in
         let* gamma = int_range 1 4 in
         return (pts, gamma)))
    (fun (pts, gamma) ->
      let funcs = Discretize.grid ~gamma ~m:3 in
      let kernel = Eps_kernel.build ~funcs pts in
      Array.for_all
        (fun w -> Regret.for_function ~points:pts ~selected:kernel w <= 1e-12)
        funcs)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_skyline_algorithms_agree;
      prop_skyline_members_non_dominated;
      prop_hull_subset_of_skyline;
      prop_regret_monotone_in_selection;
      prop_single_function_bounded_by_exact;
      prop_regret_in_unit_interval;
      prop_published_never_beats_exact;
      prop_exact_weight_dominates;
      prop_dp_value_bounds_true_regret;
      prop_sweepline_agrees_with_exact;
      prop_hd_rrms_respects_budget_and_guarantee;
      prop_discretized_regret_lower_bounds_exact;
      prop_point_regret_lp_bounds;
      prop_grid_directions_unit_nonneg;
      prop_theorem4_bound_shape;
      prop_dynamic2d_equals_scratch;
      prop_onion_top1_exact;
      prop_kernel_zero_on_grid;
    ]
