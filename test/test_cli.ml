(* Integration tests: drive the rrms command-line binary end to end
   (generate → skyline → hull → solve → eval → topk) through a shell,
   checking exit codes and parsing its output. *)

let cli = "../bin/rrms_cli.exe"

let run_capture cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let buf = Buffer.create 256 in
  (try
     while true do
       match In_channel.input_line ic with
       | Some l ->
           Buffer.add_string buf l;
           Buffer.add_char buf '\n'
       | None -> raise Exit
     done
   with Exit -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let check_exit_ok msg status =
  match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.fail (Printf.sprintf "%s: exit code %d" msg c)
  | _ -> Alcotest.fail (msg ^ ": killed/stopped")

let with_temp_csv f =
  let path = Filename.temp_file "rrms_cli_test" ".csv" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_generate_and_skyline () =
  with_temp_csv (fun csv ->
      let status, _ =
        run_capture
          (Printf.sprintf "%s generate --kind anticorrelated -n 500 -m 2 --seed 7 -o %s" cli csv)
      in
      check_exit_ok "generate" status;
      Alcotest.(check bool) "csv written" true (Sys.file_exists csv);
      let status, out = run_capture (Printf.sprintf "%s skyline -i %s" cli csv) in
      check_exit_ok "skyline" status;
      Alcotest.(check bool) "reports n=500" true
        (Astring_contains.contains out "n=500");
      Alcotest.(check bool) "reports skyline size" true
        (Astring_contains.contains out "skyline="))

let test_skyline_algorithms_agree_via_cli () =
  with_temp_csv (fun csv ->
      let status, _ =
        run_capture
          (Printf.sprintf "%s generate --kind independent -n 300 -m 3 --seed 9 -o %s" cli csv)
      in
      check_exit_ok "generate" status;
      let size algo =
        let status, out =
          run_capture (Printf.sprintf "%s skyline -i %s --algo %s" cli csv algo)
        in
        check_exit_ok ("skyline " ^ algo) status;
        Scanf.sscanf (String.trim out) "n=%d skyline=%d" (fun _ s -> s)
      in
      let bnl = size "bnl" and sfs = size "sfs" and dnc = size "dnc" in
      Alcotest.(check int) "bnl = sfs" bnl sfs;
      Alcotest.(check int) "bnl = dnc" bnl dnc)

let test_solve_and_eval_roundtrip () =
  with_temp_csv (fun csv ->
      let status, _ =
        run_capture
          (Printf.sprintf "%s generate --kind anticorrelated -n 400 -m 2 --seed 3 -o %s" cli csv)
      in
      check_exit_ok "generate" status;
      let status, out =
        run_capture
          (Printf.sprintf "%s solve -i %s --normalize --algo 2d-exact -r 4" cli csv)
      in
      check_exit_ok "solve" status;
      (* First line: algo=... regret=R ...; following lines: idx,vals. *)
      let lines = String.split_on_char '\n' (String.trim out) in
      let header = List.hd lines in
      Alcotest.(check bool) "solve header" true
        (Astring_contains.contains header "algo=2d-exact");
      let regret =
        Scanf.sscanf header "algo=%s@ r=%d selected=%d regret=%f"
          (fun _ _ _ e -> e)
      in
      let rows =
        List.filter_map
          (fun l ->
            match String.split_on_char ',' l with
            | idx :: _ :: _ -> int_of_string_opt idx
            | _ -> None)
          (List.tl lines)
      in
      Alcotest.(check bool) "selected rows parsed" true (List.length rows > 0);
      (* Re-evaluating the same rows must reproduce the regret. *)
      let rows_arg = String.concat "," (List.map string_of_int rows) in
      let status, out =
        run_capture
          (Printf.sprintf "%s eval -i %s --normalize --rows %s" cli csv rows_arg)
      in
      check_exit_ok "eval" status;
      let regret' = Scanf.sscanf (String.trim out) "regret=%f" Fun.id in
      Alcotest.(check (float 1e-6)) "eval matches solve" regret regret')

let test_topk_cli () =
  with_temp_csv (fun csv ->
      let status, _ =
        run_capture
          (Printf.sprintf "%s generate --kind anticorrelated -n 300 -m 2 --seed 5 -o %s" cli csv)
      in
      check_exit_ok "generate" status;
      let status, out =
        run_capture (Printf.sprintf "%s topk -i %s -k 2 --weights 0.5,0.5" cli csv)
      in
      check_exit_ok "topk" status;
      Alcotest.(check bool) "reports exact top-k" true
        (Astring_contains.contains out "top-2 (exact"))

let test_error_reporting () =
  (* Unknown algorithm must fail with a non-zero exit. *)
  with_temp_csv (fun csv ->
      let status, _ =
        run_capture
          (Printf.sprintf "%s generate --kind independent -n 50 -m 2 --seed 1 -o %s" cli csv)
      in
      check_exit_ok "generate" status;
      let status, _ =
        run_capture (Printf.sprintf "%s solve -i %s --algo nonsense -r 3" cli csv)
      in
      match status with
      | Unix.WEXITED 0 -> Alcotest.fail "bad algo should fail"
      | _ -> ())

let check_exit msg expected status =
  match status with
  | Unix.WEXITED c when c = expected -> ()
  | Unix.WEXITED c ->
      Alcotest.fail (Printf.sprintf "%s: exit code %d, expected %d" msg c expected)
  | _ -> Alcotest.fail (msg ^ ": killed/stopped")

let test_guard_exit_codes () =
  with_temp_csv (fun csv ->
      let status, _ =
        run_capture
          (Printf.sprintf
             "%s generate --kind anticorrelated -n 2000 -m 3 --seed 21 -o %s"
             cli csv)
      in
      check_exit_ok "generate" status;
      (* Deadline expiry: degraded success, exit 3, with the report line
         and a non-empty selection. *)
      let status, out =
        run_capture
          (Printf.sprintf
             "%s solve -i %s --algo hd-rrms -r 4 --gamma 5 --timeout 0" cli csv)
      in
      check_exit "timeout solve" 3 status;
      Alcotest.(check bool) "degraded line" true
        (Astring_contains.contains out "degraded:");
      Alcotest.(check bool) "bound reported" true
        (Astring_contains.contains out "regret_bound=");
      Alcotest.(check bool) "non-empty selection" true
        (Astring_contains.contains out "selected=1"
        || Astring_contains.contains out "selected=2"
        || Astring_contains.contains out "selected=3"
        || Astring_contains.contains out "selected=4");
      (* Cell-cap shrink: still exit 3, γ recorded in the report. *)
      let status, out =
        run_capture
          (Printf.sprintf
             "%s solve -i %s --algo hd-rrms -r 4 --gamma 8 --max-cells 3000"
             cli csv)
      in
      check_exit "cell-cap solve" 3 status;
      Alcotest.(check bool) "cell-cap reason" true
        (Astring_contains.contains out "cell-cap");
      (* Impossible cap: structured Resource_limit, exit 69. *)
      let status, _ =
        run_capture
          (Printf.sprintf "%s solve -i %s --algo hd-rrms -r 4 --max-cells 10"
             cli csv)
      in
      check_exit "impossible cap" 69 status)

let test_strict_lenient_cli () =
  with_temp_csv (fun csv ->
      let oc = open_out csv in
      output_string oc "x,y\n1,2\n3,nan\n5,6\n";
      close_out oc;
      (* Strict (default): Invalid_input, exit 65. *)
      let status, _ =
        run_capture (Printf.sprintf "%s solve -i %s --algo 2d -r 2" cli csv)
      in
      check_exit "strict bad row" 65 status;
      (* Lenient: the bad row is dropped and the solve succeeds. *)
      let status, out =
        run_capture
          (Printf.sprintf "%s solve -i %s --lenient --algo 2d -r 2" cli csv)
      in
      check_exit_ok "lenient solve" status;
      Alcotest.(check bool) "solved on surviving rows" true
        (Astring_contains.contains out "algo=2d"))

let suite =
  [
    Alcotest.test_case "generate + skyline" `Quick test_generate_and_skyline;
    Alcotest.test_case "skyline algos agree" `Quick
      test_skyline_algorithms_agree_via_cli;
    Alcotest.test_case "solve/eval roundtrip" `Quick test_solve_and_eval_roundtrip;
    Alcotest.test_case "topk" `Quick test_topk_cli;
    Alcotest.test_case "error reporting" `Quick test_error_reporting;
    Alcotest.test_case "guard exit codes" `Quick test_guard_exit_codes;
    Alcotest.test_case "strict/lenient loading" `Quick test_strict_lenient_cli;
  ]
