(* The live-mutation subsystem end to end (docs/DYNAMIC.md).

   The load-bearing contract, asserted bitwise throughout: after ANY
   mutation sequence, every incremental maintenance path — skyline
   remap/merge, regret-matrix carry-over, MRST probe rebase, carried
   result-cache entries, shard re-partitioning, WAL replay — must
   answer byte-identically to a fresh store loaded with the
   from-scratch mutated dataset, at 1/2/4 domains and 1/2/4 shards. *)

module Serve = Rrms_serve
module Json = Serve.Json
module Protocol = Serve.Protocol
module Store = Serve.Store
module Server = Serve.Server
module Shard = Serve.Shard
module Persist = Serve.Persist
module Mutate = Serve.Mutate
module Delta = Rrms_core.Delta
module Dataset = Rrms_dataset.Dataset
module Guard = Rrms_guard.Guard
module Rng = Rrms_rng.Rng

let contains = Astring_contains.contains
let query = Test_serve.query
let with_state_dir = Test_persist.with_state_dir

let synth ~n ~m ~seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Array.init m (fun _ -> Rng.float rng 1.))

let dataset_of ?(name = "mut") rows =
  let m = Array.length rows.(0) in
  Dataset.create ~name
    ~attributes:(Array.init m (Printf.sprintf "a%d"))
    rows

(* A random mutation schedule that never empties the table.  Mixing all
   three op kinds in one batch exercises the index-shift semantics of
   Delta.apply and the per-shard stream translation. *)
let random_ops rng ~m ~len0 k =
  let len = ref len0 in
  List.init k (fun _ ->
      let v () = Array.init m (fun _ -> Rng.float rng 1.) in
      match Rng.int rng 3 with
      | 0 ->
          incr len;
          Delta.Insert (v ())
      | 1 when !len > 1 ->
          let i = Rng.int rng !len in
          decr len;
          Delta.Delete i
      | _ when !len > 0 -> Delta.Upsert (Rng.int rng !len, v ())
      | _ ->
          incr len;
          Delta.Insert (v ()))

let apply_all ~m rows muts = (Delta.apply ~dim:m rows muts).Delta.rows

let must_mutate label = function
  | Ok (r : Store.mutated) -> r
  | Error _ -> Alcotest.fail (label ^ ": mutation unexpectedly refused")

let answer_of label = function
  | Ok { Store.result; cached; _ } -> (Json.to_string result, cached)
  | Error _ -> Alcotest.fail (label ^ ": query unexpectedly refused")

(* ------------------------------------------------------------------ *)
(* Store-level bit-identity                                           *)
(* ------------------------------------------------------------------ *)

(* Rounds of mixed mutations against a warm store: every algorithm's
   post-mutation answer must be byte-identical to a fresh store that
   loaded the from-scratch mutated rows — the incremental artifacts,
   the carried cache entries AND the content key must all agree. *)
let bit_identity_rounds ~domains ~m ~algos ~seed () =
  let rows0 = synth ~n:60 ~m ~seed in
  let rng = Rng.create (seed + 1) in
  let live = Store.create ~domains () in
  ignore (Store.add live (dataset_of rows0) : Store.loaded);
  let rows = ref rows0 in
  for round = 1 to 3 do
    (* Warm every artifact and cache entry first, so the mutation has
       incremental state to maintain (a cold store would just rebuild). *)
    List.iter
      (fun algo ->
        ignore (answer_of "warm" (Store.query live (query ~algo ~r:3 "mut"))))
      algos;
    let muts = random_ops rng ~m ~len0:(Array.length !rows) 12 in
    let r = must_mutate "live" (Store.mutate live ~dataset:"mut" muts) in
    rows := apply_all ~m !rows muts;
    Alcotest.(check int)
      (Printf.sprintf "round %d: generation" round)
      round r.Store.generation;
    Alcotest.(check int)
      (Printf.sprintf "round %d: size" round)
      (Array.length !rows) r.Store.n;
    let fresh = Store.create ~domains () in
    ignore (Store.add fresh (dataset_of !rows) : Store.loaded);
    List.iter
      (fun algo ->
        let got, _ =
          answer_of "live" (Store.query live (query ~algo ~r:3 "mut"))
        in
        let want, _ =
          answer_of "fresh" (Store.query fresh (query ~algo ~r:3 "mut"))
        in
        Alcotest.(check string)
          (Printf.sprintf "round %d: %s bit-identical" round
             (Protocol.algo_to_string algo))
          want got)
      algos
  done

let test_store_bit_identity_hd () =
  List.iter
    (fun domains ->
      bit_identity_rounds ~domains ~m:3
        ~algos:
          [ Protocol.Hd_rrms; Protocol.Hd_greedy; Protocol.Greedy;
            Protocol.Cube ]
        ~seed:(40 + domains) ())
    [ 1; 2; 4 ]

let test_store_bit_identity_2d () =
  List.iter
    (fun domains ->
      bit_identity_rounds ~domains ~m:2
        ~algos:[ Protocol.A2d; Protocol.A2d_exact; Protocol.Sweepline ]
        ~seed:(50 + domains) ())
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Sharded bit-identity                                               *)
(* ------------------------------------------------------------------ *)

(* Shard.mutate re-keys the partition and maintains every sub-store
   slice; the certified merge over the mutated partition must stay
   byte-identical to an unsharded solve of the mutated dataset. *)
let test_shard_bit_identity () =
  List.iter
    (fun shards ->
      let m = 3 in
      let rows0 = synth ~n:55 ~m ~seed:70 in
      let sh = Shard.create ~domains:2 ~shards () in
      ignore (Shard.add sh (dataset_of rows0) : Store.loaded);
      let rng = Rng.create (71 + shards) in
      let rows = ref rows0 in
      for round = 1 to 2 do
        (* Warm the merged artifacts so the mutation supersedes them. *)
        ignore
          (answer_of "warm"
             (Shard.query sh (query ~algo:Protocol.Hd_rrms ~r:3 "mut")));
        let muts = random_ops rng ~m ~len0:(Array.length !rows) 10 in
        ignore
          (must_mutate "shard" (Shard.mutate sh ~dataset:"mut" muts)
            : Store.mutated);
        rows := apply_all ~m !rows muts;
        let fresh = Store.create ~domains:2 () in
        ignore (Store.add fresh (dataset_of !rows) : Store.loaded);
        List.iter
          (fun algo ->
            let got, _ =
              answer_of "sharded" (Shard.query sh (query ~algo ~r:3 "mut"))
            in
            let want, _ =
              answer_of "fresh" (Store.query fresh (query ~algo ~r:3 "mut"))
            in
            Alcotest.(check string)
              (Printf.sprintf "shards=%d round %d: %s certified ≡ unsharded"
                 shards round
                 (Protocol.algo_to_string algo))
              want got)
          [ Protocol.Hd_rrms; Protocol.Hd_greedy ]
      done)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Delta-scoped cache invalidation                                    *)
(* ------------------------------------------------------------------ *)

(* A dominated insert preserves the skyline point sequence: matrices
   stay untouched, cached HD results survive (with proof: the matrix is
   a pure function of the sequence), and the warm answer still equals a
   fresh solve.  Deleting a skyline member must evict. *)
let test_cache_survival () =
  let m = 3 in
  let rows0 =
    Array.append (synth ~n:40 ~m ~seed:90) [| [| 1.; 1.; 1. |] |]
  in
  let store = Store.create ~domains:2 () in
  ignore (Store.add store (dataset_of rows0) : Store.loaded);
  let q = query ~algo:Protocol.Hd_rrms ~r:2 "mut" in
  ignore (answer_of "cold" (Store.query store q));
  (* (0.5, 0.5, 0.5) is dominated by the (1,1,1) corner: the merge
     filters the fresh row straight out, the skyline sequence is
     preserved, nothing is rebuilt, results are carried. *)
  let r =
    must_mutate "dominated insert"
      (Store.mutate store ~dataset:"mut" [ Delta.Insert [| 0.5; 0.5; 0.5 |] ])
  in
  Alcotest.(check (option string))
    "dominated insert takes the merge path" (Some "merge")
    r.Store.skyline_path;
  Alcotest.(check int) "matrices untouched" 0 r.Store.matrices_dropped;
  Alcotest.(check bool) "hd result carried" true (r.Store.results_kept >= 1);
  let got, cached = answer_of "warm" (Store.query store q) in
  Alcotest.(check bool) "carried entry serves warm" true cached;
  let fresh = Store.create ~domains:2 () in
  ignore
    (Store.add fresh
       (dataset_of (Array.append rows0 [| [| 0.5; 0.5; 0.5 |] |]))
      : Store.loaded);
  let want, _ = answer_of "fresh" (Store.query fresh q) in
  Alcotest.(check string) "carried answer bit-identical" want got;
  (* Deleting the dominating corner changes the skyline: every HD
     result must be evicted, and the next answer re-solved. *)
  let corner = Array.length rows0 - 1 in
  let r2 =
    must_mutate "skyline delete"
      (Store.mutate store ~dataset:"mut" [ Delta.Delete corner ])
  in
  Alcotest.(check bool) "skyline delete evicts" true
    (r2.Store.results_evicted >= 1);
  let got2, cached2 = answer_of "after delete" (Store.query store q) in
  Alcotest.(check bool) "evicted entry re-solves" false cached2;
  let rows2 =
    apply_all ~m rows0
      [ Delta.Insert [| 0.5; 0.5; 0.5 |]; Delta.Delete corner ]
  in
  let fresh2 = Store.create ~domains:2 () in
  ignore (Store.add fresh2 (dataset_of rows2) : Store.loaded);
  let want2, _ = answer_of "fresh2" (Store.query fresh2 q) in
  Alcotest.(check string) "re-solved answer bit-identical" want2 got2

let test_empty_and_invalid_rejected () =
  let store = Store.create () in
  ignore (Store.add store (dataset_of (synth ~n:3 ~m:2 ~seed:5)) : Store.loaded);
  (match Store.mutate store ~dataset:"mut" [] with
  | exception Guard.Error.Guard_error (Guard.Error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "empty batch must raise Invalid_input");
  (match
     Store.mutate store ~dataset:"mut"
       [ Delta.Delete 0; Delta.Delete 0; Delta.Delete 0 ]
   with
  | exception Guard.Error.Guard_error (Guard.Error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "emptying the dataset must raise Invalid_input");
  (match Store.mutate store ~dataset:"mut" [ Delta.Delete 99 ] with
  | exception Guard.Error.Guard_error (Guard.Error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "bad index must raise Invalid_input");
  (* Transactional: the failed batches installed nothing. *)
  match Store.pin store "mut" with
  | None -> Alcotest.fail "dataset vanished"
  | Some h ->
      Alcotest.(check int) "generation untouched" 0
        (Store.pinned_generation h);
      Store.unpin store h

(* ------------------------------------------------------------------ *)
(* Write-ahead log                                                    *)
(* ------------------------------------------------------------------ *)

(* Two processes, one state dir: the first journals its mutations, the
   second replays them and must answer byte-identically — the replay
   verifies each record lands on the journaled content hash. *)
let test_wal_replay () =
  with_state_dir (fun dir ->
      let m = 3 in
      let rows0 = synth ~n:45 ~m ~seed:21 in
      let rng = Rng.create 22 in
      let q = query ~algo:Protocol.Hd_rrms ~r:3 "mut" in
      let p1 = Persist.open_dir dir in
      let s1 = Store.create ~persist:p1 () in
      ignore (Store.add s1 (dataset_of rows0) : Store.loaded);
      let muts1 = random_ops rng ~m ~len0:(Array.length rows0) 8 in
      let r1 = must_mutate "first" (Store.mutate s1 ~dataset:"mut" muts1) in
      let rows1 = apply_all ~m rows0 muts1 in
      let muts2 = random_ops rng ~m ~len0:(Array.length rows1) 8 in
      let r2 = must_mutate "second" (Store.mutate s1 ~dataset:"mut" muts2) in
      let want, _ = answer_of "original" (Store.query s1 q) in
      (* "New process": fresh store over the same directory. *)
      let p2 = Persist.open_dir dir in
      let s2 = Store.create ~persist:p2 () in
      let rep = Mutate.replay s2 p2 in
      Alcotest.(check int) "two records scanned" 2 rep.Mutate.records;
      Alcotest.(check int) "two records applied" 2 rep.Mutate.applied;
      Alcotest.(check int) "none skipped" 0 rep.Mutate.skipped;
      (match Store.resolve s2 r2.Store.new_key with
      | Some key ->
          Alcotest.(check string) "final content key restored"
            r2.Store.new_key key
      | None -> Alcotest.fail "replayed key not resident");
      ignore (r1 : Store.mutated);
      let got, _ = answer_of "replayed" (Store.query s2 q) in
      Alcotest.(check string) "replayed state answers bit-identically" want
        got)

(* A torn tail (half-written last record) is detected by checksum,
   skipped on replay, and repaired by the next append. *)
let test_wal_torn_tail () =
  with_state_dir (fun dir ->
      let m = 2 in
      let rows0 = synth ~n:20 ~m ~seed:31 in
      let p1 = Persist.open_dir dir in
      let s1 = Store.create ~persist:p1 () in
      ignore (Store.add s1 (dataset_of rows0) : Store.loaded);
      ignore
        (must_mutate "a" (Store.mutate s1 ~dataset:"mut" [ Delta.Delete 0 ])
          : Store.mutated);
      ignore
        (must_mutate "b"
           (Store.mutate s1 ~dataset:"mut" [ Delta.Insert [| 0.3; 0.7 |] ])
          : Store.mutated);
      let wal = Filename.concat dir Persist.Wal.file in
      let size = (Unix.stat wal).Unix.st_size in
      Unix.truncate wal (size - 7);
      let p2 = Persist.open_dir dir in
      let s2 = Store.create ~persist:p2 () in
      let rep = Mutate.replay s2 p2 in
      Alcotest.(check int) "torn record dropped" 1 rep.Mutate.records;
      Alcotest.(check int) "surviving record applied" 1 rep.Mutate.applied;
      (* The next append lands after the last valid record — the torn
         bytes are truncated away, and a re-scan sees both records. *)
      ignore
        (must_mutate "c"
           (Store.mutate s2 ~dataset:"mut" [ Delta.Insert [| 0.9; 0.1 |] ])
          : Store.mutated);
      let p3 = Persist.open_dir dir in
      let s3 = Store.create ~persist:p3 () in
      let rep3 = Mutate.replay s3 p3 in
      Alcotest.(check int) "repaired log replays fully" 2 rep3.Mutate.records;
      Alcotest.(check int) "both applied" 2 rep3.Mutate.applied)

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

let serve_exe = "../bin/rrms_serve_bin.exe"

let run_stdio_session requests =
  let ic, oc =
    Unix.open_process (Printf.sprintf "%s --stdio 2>/dev/null" serve_exe)
  in
  List.iter
    (fun r ->
      output_string oc r;
      output_char oc '\n')
    requests;
  flush oc;
  close_out oc;
  let lines = ref [] in
  (try
     while true do
       match In_channel.input_line ic with
       | Some l -> lines := l :: !lines
       | None -> raise Exit
     done
   with Exit -> ());
  ignore (Unix.close_process (ic, oc) : Unix.process_status);
  List.rev !lines

let test_protocol_session () =
  Test_serve.with_csv ~n:40 ~m:3 ~seed:61 (fun csv ->
      let lines =
        run_stdio_session
          [
            Printf.sprintf
              "{\"id\":1,\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv;
            "{\"id\":2,\"req\":\"insert\",\"dataset\":\"d\",\"values\":[0.5,0.5,0.5]}";
            "{\"id\":3,\"req\":\"upsert\",\"dataset\":\"d\",\"index\":40,\"values\":[0.9,0.9,0.9]}";
            "{\"id\":4,\"req\":\"delete\",\"dataset\":\"d\",\"index\":40}";
            "{\"id\":5,\"req\":\"mutate\",\"dataset\":\"d\",\"ops\":[{\"op\":\"insert\",\"values\":[0.2,0.8,0.4]},{\"op\":\"delete\",\"index\":0}]}";
            "{\"id\":6,\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3}";
            "{\"id\":7,\"req\":\"delete\",\"dataset\":\"d\",\"index\":1000}";
            "{\"id\":8,\"req\":\"insert\",\"dataset\":\"ghost\",\"values\":[1,2,3]}";
            "{\"id\":9,\"req\":\"mutate\",\"dataset\":\"d\",\"ops\":[]}";
            "{\"id\":10,\"req\":\"stats\"}";
          ]
      in
      Alcotest.(check int) "one response per request" 10 (List.length lines);
      let line i = List.nth lines i in
      List.iteri
        (fun i gen ->
          Alcotest.(check bool)
            (Printf.sprintf "mutation %d ok at generation %d" (i + 2) gen)
            true
            (contains (line (i + 1))
               (Printf.sprintf "\"generation\":%d" gen)))
        [ 1; 2; 3; 4 ];
      Alcotest.(check bool) "mutated dataset answers queries" true
        (contains (line 5) "\"ok\":true");
      Alcotest.(check bool) "bad index is invalid_input" true
        (contains (line 6) "\"code\":\"invalid_input\"");
      Alcotest.(check bool) "unknown dataset" true
        (contains (line 7) "\"code\":\"unknown_dataset\"");
      Alcotest.(check bool) "empty batch is bad_request" true
        (contains (line 8) "\"code\":\"bad_request\"");
      Alcotest.(check bool) "stats reports the final generation" true
        (contains (line 9) "\"generation\":4"))

(* Mutations sent to the shard router must answer the documented
   read_only code — the workers hold read-only slices. *)
let test_router_read_only () =
  let rt = Shard.Router.create ~workers:[ "/nonexistent.sock" ] () in
  Fun.protect
    ~finally:(fun () -> Shard.Router.close rt)
    (fun () ->
      let session = Shard.Router.handler rt () in
      match
        session.Server.on_line
          "{\"id\":1,\"req\":\"insert\",\"dataset\":\"d\",\"values\":[1,2]}"
      with
      | `Reply r ->
          Alcotest.(check bool) "read_only code" true
            (contains r "\"code\":\"read_only\"");
          session.Server.on_close ()
      | `Shutdown _ -> Alcotest.fail "mutation must not shut the session down")

(* --router with --state-dir is a usage error, rejected before any
   socket is opened. *)
let test_router_state_dir_rejected () =
  let err = Filename.temp_file "rrms_mut" ".err" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists err then Sys.remove err)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf
             "%s --router --shard-socket /tmp/w0.sock --state-dir /tmp/sd \
              --stdio 2>%s </dev/null"
             serve_exe err)
      in
      Alcotest.(check bool) "usage error exit" true (code <> 0);
      let ic = open_in err in
      let text = In_channel.input_all ic in
      close_in ic;
      Alcotest.(check bool) "names the conflict" true
        (contains text "--state-dir"))

let suite =
  [
    Alcotest.test_case "store bit-identity (hd/greedy/cube)" `Quick
      test_store_bit_identity_hd;
    Alcotest.test_case "store bit-identity (2d family)" `Quick
      test_store_bit_identity_2d;
    Alcotest.test_case "shard bit-identity" `Quick test_shard_bit_identity;
    Alcotest.test_case "delta-scoped cache survival" `Quick
      test_cache_survival;
    Alcotest.test_case "invalid batches rejected" `Quick
      test_empty_and_invalid_rejected;
    Alcotest.test_case "wal replay" `Quick test_wal_replay;
    Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
    Alcotest.test_case "protocol session" `Quick test_protocol_session;
    Alcotest.test_case "router rejects mutations" `Quick
      test_router_read_only;
    Alcotest.test_case "router rejects --state-dir" `Quick
      test_router_state_dir_rejected;
  ]
