(* Tests for the function-space discretizations and Theorem 4's
   constants. *)

open Rrms_core

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let test_grid_count () =
  (* |F| = (γ+1)^(m-1), Equation 7. *)
  Alcotest.(check int) "2D γ=4" 5 (Array.length (Discretize.grid ~gamma:4 ~m:2));
  Alcotest.(check int) "3D γ=3" 16 (Array.length (Discretize.grid ~gamma:3 ~m:3));
  Alcotest.(check int) "4D γ=4" 125 (Array.length (Discretize.grid ~gamma:4 ~m:4))

let test_grid_unit_nonneg () =
  let dirs = Discretize.grid ~gamma:5 ~m:4 in
  Array.iter
    (fun v ->
      feq ~eps:1e-9 "unit norm" 1. (Rrms_geom.Vec.norm v);
      Array.iter
        (fun x -> Alcotest.(check bool) "non-negative" true (x >= -1e-12))
        v)
    dirs

let test_grid_distinct () =
  let dirs = Discretize.grid ~gamma:4 ~m:3 in
  let n = Array.length dirs in
  (* The grid may repeat directions on degenerate boundaries (sin θ = 0
     makes lower angles irrelevant), but most must be distinct. *)
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    let dup = ref false in
    for j = 0 to i - 1 do
      if Rrms_geom.Vec.equal ~eps:1e-12 dirs.(i) dirs.(j) then dup := true
    done;
    if not !dup then incr distinct
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mostly distinct (%d of %d)" !distinct n)
    true
    (!distinct >= (n * 3) / 4)

let test_grid_includes_axes_2d () =
  let dirs = Discretize.grid ~gamma:4 ~m:2 in
  let has v = Array.exists (fun d -> Rrms_geom.Vec.equal ~eps:1e-9 d v) dirs in
  Alcotest.(check bool) "has pure A2" true (has [| 0.; 1. |]);
  Alcotest.(check bool) "has pure A1" true (has [| 1.; 0. |])

let expect_invalid_input what f =
  try
    ignore (f ());
    Alcotest.fail (Printf.sprintf "expected %s failure" what)
  with
  | Rrms_guard.Guard.Error.Guard_error
      (Rrms_guard.Guard.Error.Invalid_input _) ->
      ()

let test_grid_invalid () =
  expect_invalid_input "gamma 0" (fun () -> Discretize.grid ~gamma:0 ~m:3);
  expect_invalid_input "m 1" (fun () -> Discretize.grid ~gamma:3 ~m:1)

let test_random_dirs () =
  let rng = Rrms_rng.Rng.create 101 in
  let dirs = Discretize.random rng ~count:50 ~m:5 in
  Alcotest.(check int) "count" 50 (Array.length dirs);
  Array.iter
    (fun v ->
      feq ~eps:1e-9 "unit" 1. (Rrms_geom.Vec.norm v);
      Array.iter (fun x -> Alcotest.(check bool) "nonneg" true (x >= -1e-12)) v)
    dirs

let test_force_directed_improves_spread () =
  let rng = Rrms_rng.Rng.create 102 in
  let base = Discretize.random (Rrms_rng.Rng.copy rng) ~count:30 ~m:3 in
  let relaxed = Discretize.force_directed rng ~count:30 ~m:3 in
  Array.iter
    (fun v ->
      feq ~eps:1e-9 "unit after relaxation" 1. (Rrms_geom.Vec.norm v);
      Array.iter (fun x -> Alcotest.(check bool) "nonneg" true (x >= -1e-12)) v)
    relaxed;
  let a = Discretize.min_pairwise_angle base in
  let b = Discretize.min_pairwise_angle relaxed in
  Alcotest.(check bool)
    (Printf.sprintf "spread improved: %g -> %g" a b)
    true (b > a)

let test_theorem4_constants () =
  (* α = π/(2γ). *)
  feq "alpha γ=3" (Float.pi /. 6.) (Discretize.alpha ~gamma:3);
  (* In 2D, cos^(m-1)α = cos α and α' simplifies to α itself:
     2 asin(sqrt((1-cos α)/2)) = 2 asin(sin(α/2)) = α. *)
  feq ~eps:1e-12 "α' = α in 2D" (Discretize.alpha ~gamma:4)
    (Discretize.theorem4_alpha' ~gamma:4 ~m:2);
  (* c is in (0, 1] and increases with γ (finer grid, better bound). *)
  let c4 = Discretize.theorem4_c ~gamma:4 ~m:4 in
  let c8 = Discretize.theorem4_c ~gamma:8 ~m:4 in
  Alcotest.(check bool) "0 < c <= 1" true (c4 > 0. && c4 <= 1.);
  Alcotest.(check bool) "finer grid, larger c" true (c8 > c4);
  (* Bound degrades with dimension at fixed γ. *)
  let c_m3 = Discretize.theorem4_c ~gamma:4 ~m:3 in
  let c_m6 = Discretize.theorem4_c ~gamma:4 ~m:6 in
  Alcotest.(check bool) "higher m, smaller c" true (c_m6 < c_m3);
  (* theorem4_bound at eps=0 equals 1-c. *)
  feq "bound at 0" (1. -. c4) (Discretize.theorem4_bound ~gamma:4 ~m:4 ~eps:0.);
  (* bound(1) = 1 for any c. *)
  feq "bound at 1" 1. (Discretize.theorem4_bound ~gamma:4 ~m:4 ~eps:1.)

let test_coverage_within_alpha' () =
  (* Theorem 4's geometry: any direction is within α'/2 of the grid.
     Monte-Carlo check with some slack for the estimate itself. *)
  let rng = Rrms_rng.Rng.create 103 in
  let gamma = 4 and m = 3 in
  let dirs = Discretize.grid ~gamma ~m in
  let cover = Discretize.max_coverage_angle ~samples:3000 rng dirs ~m in
  let bound = Discretize.theorem4_alpha' ~gamma ~m /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %g <= α'/2 = %g" cover bound)
    true
    (cover <= bound +. 1e-6)

let test_min_pairwise_angle_grid () =
  (* Adjacent single-angle grid steps in 2D are exactly α apart. *)
  let dirs = Discretize.grid ~gamma:6 ~m:2 in
  feq ~eps:1e-9 "2D grid spacing = α" (Discretize.alpha ~gamma:6)
    (Discretize.min_pairwise_angle dirs)

let suite =
  [
    Alcotest.test_case "grid count" `Quick test_grid_count;
    Alcotest.test_case "grid unit/nonneg" `Quick test_grid_unit_nonneg;
    Alcotest.test_case "grid distinct" `Quick test_grid_distinct;
    Alcotest.test_case "grid includes axes" `Quick test_grid_includes_axes_2d;
    Alcotest.test_case "grid invalid" `Quick test_grid_invalid;
    Alcotest.test_case "random dirs" `Quick test_random_dirs;
    Alcotest.test_case "force-directed spread" `Slow test_force_directed_improves_spread;
    Alcotest.test_case "theorem 4 constants" `Quick test_theorem4_constants;
    Alcotest.test_case "coverage within α'/2" `Slow test_coverage_within_alpha';
    Alcotest.test_case "grid spacing 2D" `Quick test_min_pairwise_angle_grid;
  ]
