(* Tests for the discretized regret matrix and the MRST oracle. *)

open Rrms_core

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let points = [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.6; 0.6 |] |]
let funcs = [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.70710678; 0.70710678 |] |]

let test_build_basics () =
  let m = Regret_matrix.build ~funcs points in
  Alcotest.(check int) "rows" 3 (Regret_matrix.rows m);
  Alcotest.(check int) "cols" 3 (Regret_matrix.cols m);
  (* Winner of each column has zero regret. *)
  feq "winner col 0" 0. (Regret_matrix.get m 0 0);
  feq "winner col 1" 0. (Regret_matrix.get m 1 1);
  feq "winner col 2" 0. (Regret_matrix.get m 2 2);
  (* Cross entries: (0,1) scores 0 under pure-x after best 1. *)
  feq "corner loses other axis" 1. (Regret_matrix.get m 1 0);
  feq "middle under pure-x" 0.4 (Regret_matrix.get m 2 0);
  (* Column best scores. *)
  feq "best col 0" 1. (Regret_matrix.column_best_score m 0);
  feq ~eps:1e-6 "best col 2" (1.2 *. 0.70710678) (Regret_matrix.column_best_score m 2)

let test_distinct_values () =
  let m = Regret_matrix.build ~funcs points in
  let v = Regret_matrix.distinct_values m in
  (* Sorted ascending, unique, contains 0 and 1. *)
  Alcotest.(check bool) "contains 0" true (Array.exists (fun x -> x = 0.) v);
  Alcotest.(check bool) "contains 1" true (Array.exists (fun x -> x = 1.) v);
  for i = 0 to Array.length v - 2 do
    Alcotest.(check bool) "strictly ascending" true (v.(i) < v.(i + 1))
  done

let test_regret_of_rows () =
  let m = Regret_matrix.build ~funcs points in
  (* Keeping everything: zero. *)
  feq "all rows" 0. (Regret_matrix.regret_of_rows m [| 0; 1; 2 |]);
  (* Keeping only the middle point: worst column is an axis. *)
  feq "middle only" 0.4 (Regret_matrix.regret_of_rows m [| 2 |]);
  (* Keeping the two corners: diagonal column suffers. *)
  let expected = ((1.2 -. 1.) /. 1.2) in
  feq ~eps:1e-6 "corners only" expected (Regret_matrix.regret_of_rows m [| 0; 1 |])

let test_mrst_exact_minimal () =
  let m = Regret_matrix.build ~funcs points in
  (* eps = 0: need winners of all three columns = all three rows. *)
  (match Mrst.solve ~solver:Mrst.Exact m ~eps:0. with
  | Some rows -> Alcotest.(check int) "eps=0 needs 3 rows" 3 (Array.length rows)
  | None -> Alcotest.fail "eps=0 should be satisfiable");
  (* eps = 0.41: the middle point alone satisfies every column
     (0.4, 0.4, 0). *)
  match Mrst.solve ~solver:Mrst.Exact m ~eps:0.41 with
  | Some rows ->
      Alcotest.(check int) "one row suffices" 1 (Array.length rows);
      Alcotest.(check int) "it is the middle point" 2 rows.(0)
  | None -> Alcotest.fail "eps=0.41 should be satisfiable"

let test_mrst_greedy_covers () =
  let m = Regret_matrix.build ~funcs points in
  match Mrst.solve ~solver:Mrst.Greedy m ~eps:0.2 with
  | Some rows ->
      feq "greedy cover satisfies threshold within eps" 0.
        (Float.max 0. (Regret_matrix.regret_of_rows m rows -. 0.2))
  | None -> Alcotest.fail "eps=0.2 should be satisfiable"

let test_mrst_greedy_vs_exact_random () =
  let rng = Rrms_rng.Rng.create 111 in
  for _ = 1 to 20 do
    let n = 3 + Rrms_rng.Rng.int rng 12 in
    let pts =
      Array.init n (fun _ ->
          Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.))
    in
    let fs = Discretize.grid ~gamma:2 ~m:3 in
    let m = Regret_matrix.build ~funcs:fs pts in
    let eps = Rrms_rng.Rng.float rng 0.5 in
    match (Mrst.solve ~solver:Mrst.Exact m ~eps, Mrst.solve ~solver:Mrst.Greedy m ~eps) with
    | None, None -> ()
    | Some e, Some g ->
        Alcotest.(check bool) "exact <= greedy size" true
          (Array.length e <= Array.length g);
        Alcotest.(check bool) "exact satisfies" true
          (Regret_matrix.regret_of_rows m e <= eps +. 1e-12);
        Alcotest.(check bool) "greedy satisfies" true
          (Regret_matrix.regret_of_rows m g <= eps +. 1e-12)
    | Some _, None | None, Some _ ->
        Alcotest.fail "solvers disagree on satisfiability"
  done

let test_mrst_always_satisfiable_on_built_matrix () =
  (* A matrix built over its own rows always contains each column's
     winner (a zero cell), so MRST succeeds at any eps >= 0 — the
     interesting question is only the cover's size. *)
  let pts = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let fs = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let m = Regret_matrix.build ~funcs:fs pts in
  (match Mrst.solve m ~eps:0.5 with
  | Some rows -> Alcotest.(check int) "needs both corners" 2 (Array.length rows)
  | None -> Alcotest.fail "two corners satisfy 0.5");
  (* With a single row, that row is the winner of every column. *)
  let m1 = Regret_matrix.build ~funcs:fs [| [| 1.; 0. |] |] in
  match Mrst.solve m1 ~eps:0. with
  | Some rows -> Alcotest.(check int) "single row covers" 1 (Array.length rows)
  | None -> Alcotest.fail "single-row matrix is satisfiable at eps=0"

(* Regression: an incremental probe after any threshold change — up,
   down, repeated, or to an exact cell value — must equal Mrst.solve
   from scratch at the same threshold.  (The prefix pointers slide both
   ways; a stale bit after a downward move once produced covers smaller
   than the from-scratch answer.) *)
let test_incremental_matches_scratch_after_threshold_changes () =
  let rng = Rrms_rng.Rng.create 2024 in
  for _ = 1 to 10 do
    let n = 4 + Rrms_rng.Rng.int rng 16 in
    let pts =
      Array.init n (fun _ -> Array.init 3 (fun _ -> Rrms_rng.Rng.float rng 1.))
    in
    let fs = Discretize.grid ~gamma:3 ~m:3 in
    let m = Regret_matrix.build ~funcs:fs pts in
    let inc = Mrst.Incremental.create m in
    let values = Regret_matrix.distinct_values m in
    let nv = Array.length values in
    (* A deliberately oscillating probe schedule: up to the top, down to
       the bottom, then binary-search-like jumps, plus exact cell values
       (threshold equality is the edgiest comparison in [advance]). *)
    let schedule =
      [
        values.(nv - 1);
        values.(0);
        values.(nv / 2);
        values.(nv / 4);
        values.((3 * nv) / 4);
        values.(nv / 2);
        0.05;
        0.9;
        0.05;
        values.(0);
      ]
    in
    List.iter
      (fun eps ->
        let fresh = Mrst.solve ~solver:Mrst.Exact m ~eps in
        let incr = Mrst.Incremental.solve ~solver:Mrst.Exact inc ~eps in
        match (fresh, incr) with
        | None, None -> ()
        | Some f, Some i ->
            (* Exact covers of the same instance: identical size, and
               both must satisfy the threshold. *)
            Alcotest.(check int)
              (Printf.sprintf "cover size equal at eps=%g" eps)
              (Array.length f) (Array.length i);
            Alcotest.(check bool)
              (Printf.sprintf "incremental cover satisfies eps=%g" eps)
              true
              (Regret_matrix.regret_of_rows m i <= eps +. 1e-12)
        | Some _, None | None, Some _ ->
            Alcotest.fail
              (Printf.sprintf
                 "incremental and from-scratch disagree on satisfiability \
                  at eps=%g"
                 eps))
      schedule
  done

let expect_invalid_input what f =
  try
    ignore (f ());
    Alcotest.fail (Printf.sprintf "expected %s failure" what)
  with
  | Rrms_guard.Guard.Error.Guard_error
      (Rrms_guard.Guard.Error.Invalid_input _) ->
      ()

let test_build_invalid () =
  expect_invalid_input "no points" (fun () ->
      Regret_matrix.build ~funcs [||]);
  expect_invalid_input "no funcs" (fun () ->
      Regret_matrix.build ~funcs:[||] points)

let suite =
  [
    Alcotest.test_case "build basics" `Quick test_build_basics;
    Alcotest.test_case "distinct values" `Quick test_distinct_values;
    Alcotest.test_case "regret of rows" `Quick test_regret_of_rows;
    Alcotest.test_case "mrst exact minimal" `Quick test_mrst_exact_minimal;
    Alcotest.test_case "mrst greedy covers" `Quick test_mrst_greedy_covers;
    Alcotest.test_case "mrst greedy vs exact" `Quick test_mrst_greedy_vs_exact_random;
    Alcotest.test_case "mrst satisfiable on built matrix" `Quick
      test_mrst_always_satisfiable_on_built_matrix;
    Alcotest.test_case "incremental = from-scratch after threshold changes"
      `Quick test_incremental_matches_scratch_after_threshold_changes;
    Alcotest.test_case "build invalid" `Quick test_build_invalid;
  ]
