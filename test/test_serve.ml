(* The serving layer end to end: protocol parsing, the artifact store
   (content-addressed datasets, shared skylines/grids/matrices, the
   result cache), admission control, fault recovery, and the --stdio
   transport of the rrms-serve binary.

   The two load-bearing contracts, both asserted bitwise:

   - a warm (cached) answer is byte-identical to the cold solve that
     populated the cache, and recomputes nothing (Obs counters);
   - a γ'-query served by column-selection from a cached γ-matrix is
     byte-identical to a cold solve at γ'. *)

module Serve = Rrms_serve
module Json = Serve.Json
module Protocol = Serve.Protocol
module Store = Serve.Store
module Server = Serve.Server
module Obs = Rrms_obs.Obs
module Dataset = Rrms_dataset.Dataset
module Guard = Rrms_guard.Guard

(* Counter assertions need a recording registry; restore the entry
   level afterwards so the CI observability lane is unaffected. *)
let with_counters f =
  let prev = Obs.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_level prev)
    (fun () ->
      Obs.set_level Obs.Counters;
      Obs.reset ();
      f ())

let temp_csv ?(n = 300) ?(m = 3) ?(seed = 11) () =
  let rng = Rrms_rng.Rng.create seed in
  let rows =
    Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))
  in
  let attributes = Array.init m (fun j -> Printf.sprintf "a%d" j) in
  let d = Dataset.create ~name:"serve_test" ~attributes rows in
  let path = Filename.temp_file "rrms_serve_test" ".csv" in
  Dataset.to_csv d path;
  path

let with_csv ?n ?m ?seed f =
  let path = temp_csv ?n ?m ?seed () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let query ?(algo = Protocol.Hd_rrms) ?(r = 4) ?(gamma = 4) ?timeout ?max_cells
    ?max_probes ?(cache = true) dataset =
  {
    Protocol.dataset;
    algo;
    r;
    gamma;
    timeout;
    max_cells;
    max_probes;
    use_cache = cache;
    explain = false;
  }

let result_string store q =
  match Store.query store q with
  | Ok { Store.result; cached; _ } -> (Json.to_string result, cached)
  | Error `Unknown_dataset -> Alcotest.fail "unexpected unknown_dataset"
  | Error `Overloaded -> Alcotest.fail "unexpected overloaded"
  | Error `Deadline_exceeded -> Alcotest.fail "unexpected deadline_exceeded"
  | Error `Draining -> Alcotest.fail "unexpected draining"

let counter = Obs.Counter.value

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1,2.5,-3]";
      "{\"a\":[{\"b\":\"c\\nd\"}],\"e\":{}}";
      "\"quote \\\" backslash \\\\ tab \\t\"";
      "0.095392799460475908";
      "[1e300,-0.5,0]";
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.fail (Printf.sprintf "parse %s: %s" s e)
      | Ok v -> (
          let printed = Json.to_string v in
          match Json.parse printed with
          | Error e ->
              Alcotest.fail (Printf.sprintf "reparse %s: %s" printed e)
          | Ok v' ->
              Alcotest.(check string)
                ("stable print of " ^ s) printed (Json.to_string v')))
    cases;
  (* Unicode escapes decode to UTF-8. *)
  (match Json.parse "\"\\u00e9\\ud83d\\ude00\"" with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "utf8 escapes" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escape parse");
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "nul"; "\"open"; "1 2"; "{\"a\" 1}"; "" ]

let test_json_numbers () =
  Alcotest.(check string) "integral" "42" (Json.to_string (Json.int 42));
  Alcotest.(check string)
    "negative integral" "-7"
    (Json.to_string (Json.float (-7.)));
  Alcotest.(check string)
    "non-finite defensive" "null"
    (Json.to_string (Json.float Float.nan));
  (* %.17g round-trips doubles exactly. *)
  let v = 0.1 +. 0.2 in
  match Json.parse (Json.to_string (Json.float v)) with
  | Ok (Json.Num v') ->
      Alcotest.(check bool) "bit-exact float roundtrip" true
        (Int64.bits_of_float v = Int64.bits_of_float v')
  | _ -> Alcotest.fail "float roundtrip"

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

let req_error line =
  match (Protocol.parse_request line).Protocol.req with
  | Error (code, _) -> code
  | Ok _ -> "ok"

let test_protocol_parse () =
  (match
     Protocol.parse_request
       "{\"id\":7,\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3}"
   with
  | { Protocol.id = Json.Num 7.; req = Ok (Protocol.Query q); _ } ->
      Alcotest.(check int) "default gamma" 4 q.Protocol.gamma;
      Alcotest.(check bool) "default cache" true q.Protocol.use_cache;
      Alcotest.(check int) "r" 3 q.Protocol.r
  | _ -> Alcotest.fail "query parse");
  Alcotest.(check string) "malformed json" "parse" (req_error "{nope");
  Alcotest.(check string) "non-object" "bad_request" (req_error "[1,2]");
  Alcotest.(check string)
    "unknown kind" "bad_request" (req_error "{\"req\":\"frobnicate\"}");
  Alcotest.(check string)
    "missing field" "bad_request" (req_error "{\"req\":\"query\"}");
  Alcotest.(check string)
    "bad r" "bad_request"
    (req_error "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"cube\",\"r\":0}");
  (* id survives a bad body, for correlation. *)
  (match Protocol.parse_request "{\"id\":\"x\",\"req\":\"nope\"}" with
  | { Protocol.id = Json.Str "x"; req = Error ("bad_request", _); _ } -> ()
  | _ -> Alcotest.fail "id recovered from bad request");
  (* Budgets never leak into the cache key; γ only for grid algos. *)
  let base = query ~algo:Protocol.Hd_rrms ~r:3 ~gamma:8 "d" in
  Alcotest.(check string)
    "budget-free key"
    (Protocol.cache_key base)
    (Protocol.cache_key { base with Protocol.max_probes = Some 2 });
  Alcotest.(check bool)
    "gamma in hd key" false
    (Protocol.cache_key base = Protocol.cache_key { base with Protocol.gamma = 4 });
  let c = query ~algo:Protocol.Cube ~r:5 ~gamma:8 "d" in
  Alcotest.(check string)
    "gamma ignored for cube"
    (Protocol.cache_key c)
    (Protocol.cache_key { c with Protocol.gamma = 2 })

(* ------------------------------------------------------------------ *)
(* Store: artifact reuse and the result cache                         *)
(* ------------------------------------------------------------------ *)

let test_store_cache_and_artifacts () =
  with_counters (fun () ->
      with_csv (fun csv ->
          let store = Store.create () in
          let l1 = Store.load store ~name:"serve_test" csv in
          Alcotest.(check bool) "first load is fresh" false
            l1.Store.already_loaded;
          let l2 = Store.load store csv in
          Alcotest.(check bool) "second load hits" true l2.Store.already_loaded;
          Alcotest.(check int) "refcount" 2 l2.Store.refs;
          Alcotest.(check string) "same key" l1.Store.key l2.Store.key;

          let m = Serve.Store.Metrics.matrix_misses in
          let sk = Serve.Store.Metrics.skyline_misses in
          let cold, cached_cold = result_string store (query l1.Store.key) in
          Alcotest.(check bool) "cold not cached" false cached_cold;
          let built_matrices = counter m and built_skylines = counter sk in
          Alcotest.(check int) "one skyline built" 1 built_skylines;
          Alcotest.(check int) "one matrix built" 1 built_matrices;

          (* Warm: byte-identical, zero recomputation. *)
          let warm, cached_warm = result_string store (query l1.Store.key) in
          Alcotest.(check bool) "warm is cached" true cached_warm;
          Alcotest.(check string) "warm bit-identical to cold" cold warm;
          Alcotest.(check int) "no new skyline" built_skylines (counter sk);
          Alcotest.(check int) "no new matrix" built_matrices (counter m);

          (* Alias and key both resolve. *)
          let via_name, _ = result_string store (query "serve_test") in
          Alcotest.(check string) "alias answers identically" cold via_name;

          (* γ=2 divides γ=4 with a power-of-two ratio: served by column
             selection, not a rebuild — and byte-identical to a cold γ=2
             solve in a fresh store. *)
          let g2, _ = result_string store (query ~gamma:2 l1.Store.key) in
          Alcotest.(check int) "no matrix rebuild for subgrid" built_matrices
            (counter m);
          Alcotest.(check int) "one derivation"
            1
            (counter Serve.Store.Metrics.matrix_derived);
          let fresh = Store.create () in
          let lf = Store.load fresh csv in
          let g2_cold, _ = result_string fresh (query ~gamma:2 lf.Store.key) in
          Alcotest.(check string) "derived == cold at gamma=2" g2_cold g2;

          (* Eviction frees the entry only when the last ref drops. *)
          (match Store.release store l1.Store.key with
          | Store.Released { remaining = 1; freed = false; _ } -> ()
          | _ -> Alcotest.fail "first release keeps the entry");
          (match Store.release store l1.Store.key with
          | Store.Released { remaining = 0; freed = true; _ } -> ()
          | _ -> Alcotest.fail "last release frees");
          match Store.query store (query l1.Store.key) with
          | Error `Unknown_dataset -> ()
          | _ -> Alcotest.fail "freed entry still answers"))

let all_algos_2d =
  [
    Protocol.A2d;
    Protocol.A2d_exact;
    Protocol.Sweepline;
    Protocol.Hd_rrms;
    Protocol.Hd_greedy;
    Protocol.Greedy;
    Protocol.Cube;
  ]

let test_warm_equals_cold_every_algo () =
  with_counters (fun () ->
      with_csv ~n:120 ~m:2 ~seed:3 (fun csv ->
          let store = Store.create () in
          let l = Store.load store csv in
          List.iter
            (fun algo ->
              let name = Protocol.algo_to_string algo in
              let cold, c0 =
                result_string store (query ~algo ~r:3 l.Store.key)
              in
              Alcotest.(check bool) (name ^ " cold") false c0;
              let warm, c1 =
                result_string store (query ~algo ~r:3 l.Store.key)
              in
              Alcotest.(check bool) (name ^ " warm hits") true c1;
              Alcotest.(check string) (name ^ " bit-identical") cold warm)
            all_algos_2d))

let test_store_domain_counts_agree () =
  with_counters (fun () ->
      with_csv ~seed:5 (fun csv ->
          let answers =
            List.map
              (fun domains ->
                let store = Store.create ~domains () in
                let l = Store.load store csv in
                fst (result_string store (query ~r:5 l.Store.key)))
              [ 1; 2; 4 ]
          in
          match answers with
          | [ a1; a2; a4 ] ->
              Alcotest.(check string) "1 vs 2 domains" a1 a2;
              Alcotest.(check string) "1 vs 4 domains" a1 a4
          | _ -> assert false))

let test_degraded_never_cached () =
  with_counters (fun () ->
      with_csv (fun csv ->
          let store = Store.create () in
          let l = Store.load store csv in
          let budgeted = query ~max_probes:1 ~r:5 l.Store.key in
          let r1, c1 = result_string store budgeted in
          Alcotest.(check bool) "budgeted run is fresh" false c1;
          Alcotest.(check bool) "budgeted run degraded" true
            (Astring_contains.contains r1 "\"degraded\":true");
          let r2, c2 = result_string store budgeted in
          Alcotest.(check bool) "degraded result was not cached" false c2;
          Alcotest.(check string) "degradation is deterministic" r1 r2;
          (* The unbudgeted answer is exact, cacheable, and a later
             budgeted query may then be served from the cache. *)
          let exact, _ = result_string store (query ~r:5 l.Store.key) in
          Alcotest.(check bool) "unbudgeted exact" true
            (Astring_contains.contains exact "\"degraded\":false");
          let r3, c3 = result_string store budgeted in
          Alcotest.(check bool) "budgeted query now cache-served" true c3;
          Alcotest.(check string) "served the exact answer" exact r3))

(* ------------------------------------------------------------------ *)
(* Concurrency: artifact sharing, admission, fault recovery           *)
(* ------------------------------------------------------------------ *)

let test_concurrent_sessions_share_artifacts () =
  with_counters (fun () ->
      with_csv ~seed:7 (fun csv ->
          List.iter
            (fun domains ->
              Obs.reset ();
              let store = Store.create ~domains ~max_inflight:8 () in
              let l = Store.load store csv in
              (* Eight sessions race the same cold query; cache reads are
                 bypassed so every one must reach the artifact layer. *)
              let results = Array.make 8 "" in
              let threads =
                Array.init 8 (fun i ->
                    Thread.create
                      (fun () ->
                        let r, _ =
                          result_string store
                            (query ~cache:false ~r:4 l.Store.key)
                        in
                        results.(i) <- r)
                      ())
              in
              Array.iter Thread.join threads;
              Array.iter
                (fun r ->
                  Alcotest.(check string)
                    (Printf.sprintf "identical under %d domains" domains)
                    results.(0) r)
                results;
              Alcotest.(check int)
                (Printf.sprintf "one skyline at %d domains" domains)
                1
                (counter Serve.Store.Metrics.skyline_misses);
              Alcotest.(check int)
                (Printf.sprintf "one matrix at %d domains" domains)
                1
                (counter Serve.Store.Metrics.matrix_misses))
            [ 1; 2; 4 ]))

(* Hold the single admission slot from another thread, then check that
   a solve query is shed with `Overloaded (and the server answers the
   structured "overloaded" error), and that the store recovers once the
   slot frees. *)
let test_admission_overload () =
  with_counters (fun () ->
      with_csv ~n:80 (fun csv ->
          let store = Store.create ~max_inflight:1 ~max_queue:0 () in
          let l = Store.load store csv in
          let gate = Mutex.create () in
          let cv = Condition.create () in
          let state = ref `Idle in
          let holder =
            Thread.create
              (fun () ->
                ignore
                  (Store.with_admission store (fun () ->
                       Mutex.lock gate;
                       state := `Holding;
                       Condition.broadcast cv;
                       while !state <> `Release do
                         Condition.wait cv gate
                       done;
                       Mutex.unlock gate)))
              ()
          in
          Mutex.lock gate;
          while !state <> `Holding do
            Condition.wait cv gate
          done;
          Mutex.unlock gate;
          (match Store.query store (query l.Store.key) with
          | Error `Overloaded -> ()
          | _ -> Alcotest.fail "saturated store must shed");
          let resp =
            match Server.handle_line store
                    (Printf.sprintf
                       "{\"req\":\"query\",\"dataset\":%S,\"algo\":\"hd-rrms\",\"r\":4}"
                       l.Store.key)
            with
            | `Reply r -> r
            | `Shutdown _ -> Alcotest.fail "not a shutdown"
          in
          Alcotest.(check bool) "overloaded error code" true
            (Astring_contains.contains resp "\"code\":\"overloaded\"");
          Alcotest.(check bool) "shed counter" true
            (counter Serve.Store.Metrics.overloaded >= 2);
          Mutex.lock gate;
          state := `Release;
          Condition.broadcast cv;
          Mutex.unlock gate;
          Thread.join holder;
          let _, cached = result_string store (query l.Store.key) in
          Alcotest.(check bool) "recovers after the burst" false cached))

let test_fault_injection_recovery () =
  with_csv ~seed:13 (fun csv ->
      Fun.protect
        ~finally:(fun () ->
          Rrms_parallel.Fault.clear ();
          (* Re-arm whatever RRMS_FAULT the CI lane configured. *)
          Rrms_parallel.Fault.configure_from_env ())
        (fun () ->
          let store = Store.create ~domains:2 () in
          let l = Store.load store csv in
          (* Worker 0 is the submitting domain: it always executes chunk
             boundaries (even on the serial fallback), so the injection
             fires deterministically at every domain count — faulting a
             spawned worker is racy when the main domain can drain the
             whole batch first. *)
          Rrms_parallel.Fault.set ~worker:0 Rrms_parallel.Fault.Raise;
          let resp =
            match Server.handle_line store
                    (Printf.sprintf
                       "{\"id\":1,\"req\":\"query\",\"dataset\":%S,\"algo\":\"hd-rrms\",\"r\":4}"
                       l.Store.key)
            with
            | `Reply r -> r
            | `Shutdown _ -> Alcotest.fail "not a shutdown"
          in
          Alcotest.(check bool) "fault surfaces as internal error" true
            (Astring_contains.contains resp "\"code\":\"internal\"");
          Rrms_parallel.Fault.clear ();
          (* The store (and its pool) must be healthy afterwards. *)
          let _, cached = result_string store (query l.Store.key) in
          Alcotest.(check bool) "solves after the fault" false cached;
          let again, c2 = result_string store (query l.Store.key) in
          Alcotest.(check bool) "and caches" true c2;
          Alcotest.(check bool) "non-empty result" true
            (Astring_contains.contains again "\"selected\"")))

(* A session's load references die with the session. *)
let test_session_eof_releases_refs () =
  with_csv ~n:60 (fun csv ->
      let store = Store.create () in
      let to_session_r, to_session_w = Unix.pipe () in
      let from_session_r, from_session_w = Unix.pipe () in
      let outcome = ref `Eof in
      let th =
        Thread.create
          (fun () ->
            let ic = Unix.in_channel_of_descr to_session_r in
            let oc = Unix.out_channel_of_descr from_session_w in
            outcome := Server.run_session store ic oc;
            close_out_noerr oc)
          ()
      in
      let out = Unix.out_channel_of_descr to_session_w in
      let inp = Unix.in_channel_of_descr from_session_r in
      output_string out
        (Printf.sprintf "{\"req\":\"load\",\"path\":%S,\"name\":\"sess\"}\n" csv);
      flush out;
      let reply = input_line inp in
      Alcotest.(check bool) "load ok" true
        (Astring_contains.contains reply "\"ok\":true");
      (* While the session lives, the entry answers. *)
      (match Store.query store (query ~algo:Protocol.Cube ~r:4 "sess") with
      | Ok _ -> ()
      | _ -> Alcotest.fail "live session's dataset must answer");
      close_out out;
      Thread.join th;
      Alcotest.(check bool) "session saw EOF" true (!outcome = `Eof);
      (match Store.query store (query ~algo:Protocol.Cube ~r:4 "sess") with
      | Error `Unknown_dataset -> ()
      | _ -> Alcotest.fail "EOF must release the session's references");
      close_in_noerr inp;
      Unix.close to_session_r)

(* ------------------------------------------------------------------ *)
(* Request-scoped telemetry                                           *)
(* ------------------------------------------------------------------ *)

module Telemetry = Serve.Telemetry

let with_telemetry ?slow_ms f =
  let path = Filename.temp_file "rrms_access" ".jsonl" in
  let telemetry = Telemetry.create ~access_log:path ?slow_ms () in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.close telemetry;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f telemetry path)

let read_jsonl path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev_map
    (fun l ->
      match Json.parse l with
      | Ok j -> j
      | Error e -> Alcotest.fail (Printf.sprintf "bad log line %s: %s" l e))
    !lines
  |> List.rev

let log_type j =
  match Json.member "type" j with Some (Json.Str s) -> s | _ -> "?"

let str_member name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "missing string member %S" name)

(* Two sessions run concurrently against one store; the access log must
   attribute every line — and every span inside every slow-query line —
   to the session and request that produced it. *)
let test_request_scoped_attribution () =
  with_counters (fun () ->
      with_csv ~seed:23 (fun csv ->
          with_telemetry ~slow_ms:0. (fun telemetry path ->
              let store = Store.create ~max_inflight:8 () in
              let queries_per_session = 3 in
              let run_one tag =
                let to_r, to_w = Unix.pipe () in
                let from_r, from_w = Unix.pipe () in
                let th =
                  Thread.create
                    (fun () ->
                      let ic = Unix.in_channel_of_descr to_r in
                      let oc = Unix.out_channel_of_descr from_w in
                      ignore (Server.run_session ~telemetry store ic oc);
                      close_out_noerr oc)
                    ()
                in
                let out = Unix.out_channel_of_descr to_w in
                let inp = Unix.in_channel_of_descr from_r in
                output_string out
                  (Printf.sprintf
                     "{\"req\":\"load\",\"path\":%S,\"name\":%S}\n" csv tag);
                List.iter
                  (fun r ->
                    output_string out
                      (Printf.sprintf
                         "{\"req\":\"query\",\"dataset\":%S,\"algo\":\"hd-rrms\",\"r\":%d}\n"
                         tag r))
                  [ 3; 3; 4 ];
                flush out;
                (* Drain every reply, then EOF the session. *)
                for _ = 0 to queries_per_session do
                  ignore (input_line inp)
                done;
                close_out out;
                Thread.join th;
                close_in_noerr inp;
                Unix.close to_r
              in
              let threads =
                List.map
                  (fun tag -> Thread.create (fun () -> run_one tag) ())
                  [ "alpha"; "beta" ]
              in
              List.iter Thread.join threads;
              let lines = read_jsonl path in
              let access = List.filter (fun j -> log_type j = "access") lines in
              let slow = List.filter (fun j -> log_type j = "slow_query") lines in
              Alcotest.(check int) "one access line per query"
                (2 * queries_per_session)
                (List.length access);
              Alcotest.(check int) "slow_ms 0 captures every query"
                (2 * queries_per_session)
                (List.length slow);
              (* Session and request attribution. *)
              let sessions =
                List.sort_uniq compare
                  (List.map (fun j -> str_member "session_id" j) access)
              in
              Alcotest.(check int) "two distinct sessions" 2
                (List.length sessions);
              let request_ids = List.map (fun j -> str_member "request_id" j) access in
              Alcotest.(check int) "request ids globally unique"
                (List.length request_ids)
                (List.length (List.sort_uniq compare request_ids));
              List.iter
                (fun j ->
                  let sid = str_member "session_id" j in
                  let rid = str_member "request_id" j in
                  let prefix = sid ^ "-r" in
                  Alcotest.(check bool)
                    (Printf.sprintf "request %s belongs to session %s" rid sid)
                    true
                    (String.length rid > String.length prefix
                    && String.sub rid 0 (String.length prefix) = prefix))
                access;
              (* Every span inside a slow-query record is tagged with that
                 record's own request — concurrency must not cross wires. *)
              let tagged_spans = ref 0 in
              List.iter
                (fun j ->
                  let rid = str_member "request_id" j in
                  let sid = str_member "session_id" j in
                  match Json.member "spans" j with
                  | Some (Json.Arr spans) ->
                      List.iter
                        (fun sp ->
                          incr tagged_spans;
                          match Json.member "attrs" sp with
                          | Some attrs ->
                              Alcotest.(check string)
                                "span tagged with its own request" rid
                                (str_member "request_id" attrs);
                              Alcotest.(check string)
                                "span tagged with its own session" sid
                                (str_member "session_id" attrs)
                          | None -> Alcotest.fail "span without attrs")
                        spans
                  | _ -> Alcotest.fail "slow_query without spans")
                slow;
              Alcotest.(check bool) "cold queries produced spans" true
                (!tagged_spans > 0))))

(* The stats response's latency section must reconcile with the access
   log and with the store's own cache counters. *)
let test_stats_reconciles () =
  with_counters (fun () ->
      with_csv ~seed:29 (fun csv ->
          with_telemetry (fun telemetry path ->
              let store = Store.create () in
              let send line =
                match Server.handle_line ~telemetry store line with
                | `Reply r -> r
                | `Shutdown _ -> Alcotest.fail "unexpected shutdown"
              in
              ignore
                (send
                   (Printf.sprintf
                      "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv));
              let q gamma =
                Printf.sprintf
                  "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":4,\"gamma\":%d}"
                  gamma
              in
              ignore (send (q 4)) (* miss *);
              ignore (send (q 4)) (* hit *);
              ignore (send (q 2)) (* derived from the gamma=4 matrix *);
              let reply = send "{\"id\":9,\"req\":\"stats\"}" in
              let stats =
                match Json.parse reply with
                | Ok j -> j
                | Error e -> Alcotest.fail ("stats unparseable: " ^ e)
              in
              let result =
                match Json.member "result" stats with
                | Some r -> r
                | None -> Alcotest.fail "stats without result"
              in
              let latency =
                match Json.member "latency" result with
                | Some l -> l
                | None -> Alcotest.fail "stats without latency"
              in
              let hists =
                match Json.member "histograms" latency with
                | Some (Json.Arr hs) -> hs
                | _ -> Alcotest.fail "latency without histograms"
              in
              let count_of h =
                match Json.member "count" h with
                | Some (Json.Num n) -> int_of_float n
                | _ -> Alcotest.fail "histogram without count"
              in
              let total = List.fold_left (fun a h -> a + count_of h) 0 hists in
              Alcotest.(check int) "histogram counts cover every query" 3 total;
              let by_cache c =
                List.filter (fun h -> str_member "cache" h = c) hists
              in
              List.iter
                (fun c ->
                  match by_cache c with
                  | [ h ] ->
                      Alcotest.(check int) (c ^ " counted once") 1 (count_of h);
                      Alcotest.(check string) (c ^ " algo") "hd-rrms"
                        (str_member "algo" h);
                      Alcotest.(check string) (c ^ " status") "ok"
                        (str_member "status" h);
                      List.iter
                        (fun f ->
                          match Json.member f h with
                          | Some (Json.Num v) ->
                              Alcotest.(check bool) (c ^ " " ^ f ^ " finite")
                                true
                                (Float.is_finite v && v >= 0.)
                          | _ -> Alcotest.fail ("histogram missing " ^ f))
                        [ "p50_ms"; "p95_ms"; "p99_ms"; "max_ms"; "sum_ms" ]
                  | hs ->
                      Alcotest.fail
                        (Printf.sprintf "%d histograms for cache=%s"
                           (List.length hs) c))
                [ "hit"; "derived"; "miss" ];
              (* Quantile ordering within each key. *)
              List.iter
                (fun h ->
                  let f name =
                    match Json.member name h with
                    | Some (Json.Num v) -> v
                    | _ -> 0.
                  in
                  Alcotest.(check bool) "p50 <= p95 <= p99 <= max" true
                    (f "p50_ms" <= f "p95_ms"
                    && f "p95_ms" <= f "p99_ms"
                    && f "p99_ms" <= f "max_ms"))
                hists;
              (match Json.member "access_log_lines" latency with
              | Some (Json.Num n) ->
                  Alcotest.(check int) "access_log_lines matches queries" 3
                    (int_of_float n)
              | _ -> Alcotest.fail "latency without access_log_lines");
              (match Json.member "access_log" latency with
              | Some (Json.Str p) ->
                  Alcotest.(check string) "access_log path reported" path p
              | _ -> Alcotest.fail "latency without access_log path");
              (* The file agrees with the counters it reports. *)
              let access =
                List.filter
                  (fun j -> log_type j = "access")
                  (read_jsonl path)
              in
              Alcotest.(check int) "file has the three access lines" 3
                (List.length access);
              let hits =
                List.length
                  (List.filter (fun j -> str_member "cache" j = "hit") access)
              in
              Alcotest.(check int) "one hit in the log" 1 hits;
              Alcotest.(check int)
                "store's hit counter agrees with the histogram" hits
                (counter Serve.Store.Metrics.result_hits))))

(* Telemetry (contexts, histograms, access logging) must not perturb
   the answer: bit-identical results with it on and off, at every
   domain count. *)
let test_bit_identical_with_telemetry () =
  with_csv ~seed:31 (fun csv ->
      let answer ~domains ~telemetry_on =
        let store = Store.create ~domains () in
        let l = Store.load store csv in
        let line =
          Printf.sprintf
            "{\"req\":\"query\",\"dataset\":%S,\"algo\":\"hd-rrms\",\"r\":4}"
            l.Store.key
        in
        let reply =
          if telemetry_on then
            with_counters (fun () ->
                with_telemetry ~slow_ms:0. (fun telemetry _ ->
                    match Server.handle_line ~telemetry store line with
                    | `Reply r -> r
                    | `Shutdown _ -> Alcotest.fail "unexpected shutdown"))
          else
            match Server.handle_line store line with
            | `Reply r -> r
            | `Shutdown _ -> Alcotest.fail "unexpected shutdown"
        in
        match Json.parse reply with
        | Ok j -> (
            match Json.member "result" j with
            | Some r -> Json.to_string r
            | None -> Alcotest.fail ("no result in " ^ reply))
        | Error e -> Alcotest.fail ("unparseable reply: " ^ e)
      in
      List.iter
        (fun domains ->
          Alcotest.(check string)
            (Printf.sprintf "bit-identical at %d domains" domains)
            (answer ~domains ~telemetry_on:false)
            (answer ~domains ~telemetry_on:true))
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* The binary, over --stdio                                           *)
(* ------------------------------------------------------------------ *)

let serve_exe = "../bin/rrms_serve_bin.exe"

let run_stdio_session requests =
  let ic, oc =
    Unix.open_process (Printf.sprintf "%s --stdio 2>/dev/null" serve_exe)
  in
  List.iter
    (fun r ->
      output_string oc r;
      output_char oc '\n')
    requests;
  flush oc;
  close_out oc;
  let lines = ref [] in
  (try
     while true do
       match In_channel.input_line ic with
       | Some l -> lines := l :: !lines
       | None -> raise Exit
     done
   with Exit -> ());
  let status = Unix.close_process (ic, oc) in
  (status, List.rev !lines)

let member_string name line =
  match Json.parse line with
  | Ok j -> Option.map Json.to_string (Json.member name j)
  | Error e -> Alcotest.fail (Printf.sprintf "unparseable response %s: %s" line e)

let test_stdio_end_to_end () =
  with_csv ~n:150 ~m:3 ~seed:21 (fun csv ->
      let status, lines =
        run_stdio_session
          [
            Printf.sprintf "{\"id\":1,\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv;
            "{\"id\":2,\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3}";
            "{\"id\":3,\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3}";
            "this is not json";
            "{\"id\":4,\"req\":\"transmogrify\"}";
            "{\"id\":5,\"req\":\"query\",\"dataset\":\"ghost\",\"algo\":\"cube\",\"r\":4}";
            "{\"id\":6,\"req\":\"stats\"}";
            "{\"id\":7,\"req\":\"evict\",\"dataset\":\"d\"}";
            "{\"id\":8,\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"cube\",\"r\":4}";
            "{\"id\":9,\"req\":\"shutdown\"}";
          ]
      in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c ->
          Alcotest.fail (Printf.sprintf "rrms-serve exited %d" c)
      | _ -> Alcotest.fail "rrms-serve killed");
      Alcotest.(check int) "one response per request" 10 (List.length lines);
      let line i = List.nth lines i in
      Alcotest.(check bool) "load ok" true
        (Astring_contains.contains (line 0) "\"already_loaded\":false");
      (* Cold vs warm: identical result member, cached flag flips. *)
      let r2 = member_string "result" (line 1) in
      let r3 = member_string "result" (line 2) in
      Alcotest.(check bool) "cold uncached" true
        (Astring_contains.contains (line 1) "\"cached\":false");
      Alcotest.(check bool) "warm cached" true
        (Astring_contains.contains (line 2) "\"cached\":true");
      (match (r2, r3) with
      | Some a, Some b ->
          Alcotest.(check string) "warm result bit-identical" a b
      | _ -> Alcotest.fail "missing result member");
      Alcotest.(check bool) "parse error" true
        (Astring_contains.contains (line 3) "\"code\":\"parse\"");
      Alcotest.(check bool) "unknown request" true
        (Astring_contains.contains (line 4) "\"code\":\"bad_request\"");
      Alcotest.(check bool) "unknown dataset" true
        (Astring_contains.contains (line 5) "\"code\":\"unknown_dataset\"");
      Alcotest.(check bool) "stats sees the dataset" true
        (Astring_contains.contains (line 6) "\"name\":\"d\"");
      Alcotest.(check bool) "stats counts the hit" true
        (Astring_contains.contains (line 6) "\"rrms_serve_result_hits_total\":1");
      Alcotest.(check bool) "evict frees" true
        (Astring_contains.contains (line 7) "\"freed\":true");
      Alcotest.(check bool) "query after evict fails" true
        (Astring_contains.contains (line 8) "\"code\":\"unknown_dataset\"");
      Alcotest.(check bool) "shutdown acknowledged" true
        (Astring_contains.contains (line 9) "\"stopping\":true"))

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
    Alcotest.test_case "store cache and artifacts" `Quick
      test_store_cache_and_artifacts;
    Alcotest.test_case "warm equals cold for every algo" `Quick
      test_warm_equals_cold_every_algo;
    Alcotest.test_case "domain counts agree" `Quick
      test_store_domain_counts_agree;
    Alcotest.test_case "degraded never cached" `Quick
      test_degraded_never_cached;
    Alcotest.test_case "concurrent sessions share artifacts" `Quick
      test_concurrent_sessions_share_artifacts;
    Alcotest.test_case "admission overload" `Quick test_admission_overload;
    Alcotest.test_case "fault injection recovery" `Quick
      test_fault_injection_recovery;
    Alcotest.test_case "session EOF releases refs" `Quick
      test_session_eof_releases_refs;
    Alcotest.test_case "request-scoped attribution" `Quick
      test_request_scoped_attribution;
    Alcotest.test_case "stats reconciles with access log" `Quick
      test_stats_reconciles;
    Alcotest.test_case "bit-identical with telemetry on/off" `Quick
      test_bit_identical_with_telemetry;
    Alcotest.test_case "stdio end to end" `Quick test_stdio_end_to_end;
  ]
