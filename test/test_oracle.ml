(* Differential-oracle harness.

   A brute-force regret oracle — dense direction sampling, nothing
   shared with the solvers' geometry — cross-checks every published
   algorithm on seeded random instances:

   - 2D: the corrected 2D-RRMS DP and the Sweeping-Line baseline must
     select sets of EQUAL exact regret on every instance, and both must
     dominate (be no better than) the brute-force subset enumeration on
     small instances;
   - the sampled oracle is a sound lower bound on the exact regret and
     converges to it under dense sampling;
   - HD: the achieved exact regret of HD-RRMS and HD-GREEDY is within
     the certified Theorem-4 bound on every instance. *)

open Rrms_core
module Vec = Rrms_geom.Vec
module Polar = Rrms_geom.Polar

let feq ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g, diff %g)" msg expected got
       (Float.abs (expected -. got)))
    true
    (Float.abs (expected -. got) <= eps)

let dataset seed ~n ~m =
  let rng = Rrms_rng.Rng.create seed in
  Array.init n (fun _ -> Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))

(* ------------------------------------------------------------------ *)
(* The oracle: max over densely sampled directions of the regret ratio.
   Always a LOWER bound on the true maximum regret; converges from
   below as the sample count grows. *)

let oracle_2d ?(steps = 4000) ~selected points =
  let half_pi = Float.pi /. 2. in
  let worst = ref 0. in
  for q = 0 to steps do
    let phi = half_pi *. float_of_int q /. float_of_int steps in
    let w = Polar.weight_of_angle_2d phi in
    let best_all = Vec.max_score w points in
    if best_all > 0. then begin
      let best_sel = ref neg_infinity in
      Array.iter
        (fun i ->
          let s = Vec.dot w points.(i) in
          if s > !best_sel then best_sel := s)
        selected;
      let reg = Float.max 0. ((best_all -. !best_sel) /. best_all) in
      if reg > !worst then worst := reg
    end
  done;
  !worst

let oracle_hd ?(count = 3000) ~seed ~selected points =
  let m = Array.length points.(0) in
  let rng = Rrms_rng.Rng.create seed in
  let dirs = Discretize.random rng ~count ~m in
  Array.fold_left
    (fun acc w -> Float.max acc (Regret.for_function ~points ~selected w))
    0. dirs

(* ------------------------------------------------------------------ *)
(* 2D: 2D-RRMS vs Sweeping-Line vs the oracle, 50 seeded instances.    *)

let test_2d_differential () =
  for trial = 1 to 50 do
    let n = 10 + ((trial * 13) mod 191) in
    let r = 1 + (trial mod 5) in
    let points = dataset (1000 + trial) ~n ~m:2 in
    let exact = Rrms2d.solve_exact points ~r in
    let sweep = Sweepline.solve points ~r in
    (* Both solve the same min-max problem exactly: equal regret (the
       selections may differ when ties exist, the value may not). *)
    feq
      (Printf.sprintf "trial %d: 2D-RRMS exact = sweepline regret" trial)
      exact.Rrms2d.regret sweep.Sweepline.regret;
    (* The published DP is a heuristic under its Property-1 assumption:
       never better than the exact DP, on any instance. *)
    let published = Rrms2d.solve points ~r in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: published >= exact" trial)
      true
      (published.Rrms2d.regret >= exact.Rrms2d.regret -. 1e-9);
    (* Oracle soundness + convergence: sampled <= exact <= sampled + tol
       (4000 samples over the quarter circle; the regret profile is
       piecewise smooth, so the dense max is tight to ~1e-3). *)
    let o = oracle_2d ~selected:exact.Rrms2d.selected points in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: oracle is a lower bound" trial)
      true
      (o <= exact.Rrms2d.regret +. 1e-9);
    Alcotest.(check bool)
      (Printf.sprintf
         "trial %d: oracle converges to the exact regret (gap %g)" trial
         (exact.Rrms2d.regret -. o))
      true
      (exact.Rrms2d.regret -. o <= 5e-3)
  done

(* Small instances: the exact DP must match full subset enumeration. *)
let test_2d_vs_brute_force () =
  for trial = 1 to 12 do
    let n = 6 + (trial mod 7) in
    let r = 1 + (trial mod 3) in
    let points = dataset (4000 + trial) ~n ~m:2 in
    let exact = Rrms2d.solve_exact points ~r in
    let brute = Rrms2d.solve_brute_force points ~r in
    feq
      (Printf.sprintf "trial %d: exact DP = brute force" trial)
      brute.Rrms2d.regret exact.Rrms2d.regret
  done

(* ------------------------------------------------------------------ *)
(* HD: certified bounds hold on every instance.                        *)

let test_hd_rrms_certified () =
  for trial = 1 to 50 do
    let m = 3 + (trial mod 2) in
    let n = 40 + ((trial * 17) mod 141) in
    let r = 2 + (trial mod 4) in
    let gamma = 2 + (trial mod 3) in
    let points = dataset (2000 + trial) ~n ~m in
    let res = Hd_rrms.solve ~gamma points ~r in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: hd-rrms returned <= r tuples" trial)
      true
      (Array.length res.Hd_rrms.selected <= r);
    let achieved = Regret.exact_lp ~selected:res.Hd_rrms.selected points in
    Alcotest.(check bool)
      (Printf.sprintf
         "trial %d: hd-rrms exact regret %g within certified bound %g" trial
         achieved res.Hd_rrms.guarantee)
      true
      (achieved <= res.Hd_rrms.guarantee +. 1e-9);
    (* The sampled oracle can never exceed the exact LP regret. *)
    let o = oracle_hd ~seed:(5000 + trial) ~selected:res.Hd_rrms.selected points in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: sampled oracle <= exact LP regret" trial)
      true
      (o <= achieved +. 1e-9)
  done

let test_hd_greedy_certified () =
  for trial = 1 to 50 do
    let m = 3 + (trial mod 2) in
    let n = 40 + ((trial * 19) mod 141) in
    let r = 2 + (trial mod 4) in
    let gamma = 2 + (trial mod 3) in
    let points = dataset (3000 + trial) ~n ~m in
    let res = Hd_greedy.solve ~gamma points ~r in
    let bound =
      Discretize.theorem4_bound ~gamma:res.Hd_greedy.gamma_used ~m
        ~eps:res.Hd_greedy.discretized_regret
    in
    let achieved = Regret.exact_lp ~selected:res.Hd_greedy.selected points in
    Alcotest.(check bool)
      (Printf.sprintf
         "trial %d: hd-greedy exact regret %g within Theorem-4 bound %g" trial
         achieved bound)
      true
      (achieved <= bound +. 1e-9)
  done

(* The discretized grid regret reported by the HD solvers must agree
   with an independent evaluation of the selection over the same grid —
   Regret.sampled over Discretize.grid is that evaluation. *)
let test_hd_grid_regret_agrees () =
  for trial = 1 to 10 do
    let m = 3 in
    let n = 60 + (trial * 7) in
    let gamma = 3 in
    let points = dataset (6000 + trial) ~n ~m in
    let res = Hd_rrms.solve ~gamma points ~r:3 in
    let funcs = Discretize.grid ~gamma ~m in
    let sampled =
      Regret.sampled ~selected:res.Hd_rrms.selected ~funcs points
    in
    feq ~eps:1e-9
      (Printf.sprintf "trial %d: reported grid regret = independent eval" trial)
      sampled res.Hd_rrms.discretized_regret
  done

(* ------------------------------------------------------------------ *)
(* Every algorithm the query service exposes (Protocol.algo) must be
   bit-identical however wide the default domain pool is — the flat
   matrix layout, the batched binary search and the adaptive chunking
   must never leak into a result.                                      *)

let test_served_algos_domain_invariant () =
  let pts2 = dataset 7700 ~n:400 ~m:2 in
  let ptsh = dataset 7701 ~n:500 ~m:3 in
  let r = 4 and gamma = 3 in
  let run () =
    ( Rrms2d.solve pts2 ~r,
      Rrms2d.solve_exact pts2 ~r,
      Sweepline.solve pts2 ~r,
      Hd_rrms.solve ~gamma ptsh ~r,
      Hd_greedy.solve ~gamma ptsh ~r,
      Greedy.solve ptsh ~r,
      Cube.solve ptsh ~r )
  in
  let saved = Rrms_parallel.Pool.default_size () in
  Fun.protect
    ~finally:(fun () -> Rrms_parallel.Pool.set_default_size saved)
    (fun () ->
      Rrms_parallel.Pool.set_default_size 1;
      let reference = run () in
      List.iter
        (fun d ->
          Rrms_parallel.Pool.set_default_size d;
          Alcotest.(check bool)
            (Printf.sprintf
               "all seven served algos bit-identical at %d domains" d)
            true
            (run () = reference))
        [ 2; 4 ])

let suite =
  [
    Alcotest.test_case "2d differential (50 instances)" `Quick
      test_2d_differential;
    Alcotest.test_case "2d exact = brute force" `Quick test_2d_vs_brute_force;
    Alcotest.test_case "hd-rrms certified bound (50 instances)" `Quick
      test_hd_rrms_certified;
    Alcotest.test_case "hd-greedy certified bound (50 instances)" `Quick
      test_hd_greedy_certified;
    Alcotest.test_case "hd grid regret agrees with independent eval" `Quick
      test_hd_grid_regret_agrees;
    Alcotest.test_case "served algos: domains 1 = 2 = 4" `Quick
      test_served_algos_domain_invariant;
  ]
