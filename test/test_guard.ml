(* Tests for the guard subsystem: structured errors, strict/lenient CSV
   validation, budget expiry with anytime degradation, γ auto-shrink,
   and fault injection into the domain pool. *)

open Rrms_guard
open Rrms_dataset

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let with_temp_csv contents f =
  let path = Filename.temp_file "rrms_guard" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path contents;
      f path)

(* ------------------------- structured errors ---------------------- *)

let test_error_exit_codes () =
  let open Guard.Error in
  Alcotest.(check int) "invalid input = 65" 65
    (exit_code (Invalid_input { what = "x"; line = None; column = None }));
  Alcotest.(check int) "timeout = 75" 75
    (exit_code (Timeout { elapsed = 1.; limit = 0.5 }));
  Alcotest.(check int) "resource limit = 69" 69
    (exit_code (Resource_limit { what = "cells"; requested = 9; limit = 3 }));
  Alcotest.(check int) "numerical = 70" 70
    (exit_code (Numerical { what = "unbounded" }))

let test_budget_basics () =
  let b = Guard.Budget.create ~max_probes:2 () in
  Alcotest.(check bool) "fresh: no stop" true (Guard.Budget.stop_reason b = None);
  Guard.Budget.note_probe b;
  Alcotest.(check bool) "1 probe: no stop" true
    (Guard.Budget.stop_reason b = None);
  Guard.Budget.note_probe b;
  (match Guard.Budget.stop_reason b with
  | Some (Guard.Probe_cap { probes = 2; limit = 2 }) -> ()
  | _ -> Alcotest.fail "expected Probe_cap {2;2}");
  let c = Guard.Budget.create ~max_cells:100 () in
  Guard.Budget.check_cells c ~what:"cells" 100;
  (try
     Guard.Budget.check_cells c ~what:"cells" 101;
     Alcotest.fail "expected Resource_limit"
   with Guard.Error.Guard_error (Guard.Error.Resource_limit _) -> ());
  Alcotest.(check bool) "unlimited" true
    (Guard.Budget.is_unlimited Guard.Budget.unlimited)

(* --------------------- strict / lenient loading ------------------- *)

(* header + good, NaN, short-arity, junk, negative, good. *)
let mixed_csv = "x,y\n1,2\n3,nan\n4\nfoo,1\n-1,2\n5,6\n"

let test_strict_rejects_with_location () =
  with_temp_csv mixed_csv (fun path ->
      try
        ignore (Dataset.of_csv path);
        Alcotest.fail "expected Invalid_input"
      with
      | Guard.Error.Guard_error
          (Guard.Error.Invalid_input { line; column; _ }) ->
          Alcotest.(check (option int)) "line of first bad row" (Some 3) line;
          Alcotest.(check (option string)) "offending column" (Some "y") column)

let test_lenient_drops_and_reports () =
  with_temp_csv mixed_csv (fun path ->
      let d, warnings = Dataset.of_csv_report ~mode:Dataset.Lenient path in
      Alcotest.(check int) "good rows kept" 2 (Dataset.size d);
      Alcotest.(check (array (float 0.))) "first row" [| 1.; 2. |]
        (Dataset.row d 0);
      Alcotest.(check (array (float 0.))) "last row" [| 5.; 6. |]
        (Dataset.row d 1);
      Alcotest.(check (list int)) "warning lines" [ 3; 4; 5; 6 ]
        (List.map (fun (w : Dataset.load_warning) -> w.line) warnings))

let test_strict_empty_file () =
  with_temp_csv "" (fun path ->
      try
        ignore (Dataset.of_csv path);
        Alcotest.fail "expected Invalid_input on empty file"
      with
      | Guard.Error.Guard_error (Guard.Error.Invalid_input { line; _ }) ->
          Alcotest.(check (option int)) "line 1" (Some 1) line)

(* ----------------------- simplex degeneracy ----------------------- *)

let test_simplex_pivot_cap () =
  let open Rrms_lp in
  (* The classic max 3x+5y LP needs several pivots; a cap of 1 must
     surface as the Degenerate status rather than a wrong answer. *)
  let constraints =
    [
      Simplex.constraint_ [| 1.; 0. |] Simplex.Le 4.;
      Simplex.constraint_ [| 0.; 2. |] Simplex.Le 12.;
      Simplex.constraint_ [| 3.; 2. |] Simplex.Le 18.;
    ]
  in
  (match Simplex.maximize ~max_pivots:1 ~c:[| 3.; 5. |] constraints with
  | Simplex.Degenerate { pivots } ->
      Alcotest.(check bool) "pivot count reported" true (pivots >= 1)
  | _ -> Alcotest.fail "expected Degenerate under a 1-pivot cap");
  (* Without the cap the same instance solves normally. *)
  match Simplex.maximize ~c:[| 3.; 5. |] constraints with
  | Simplex.Optimal { objective; _ } ->
      Alcotest.(check (float 1e-6)) "optimum" 36. objective
  | _ -> Alcotest.fail "expected Optimal without a cap"

(* --------------------- budget expiry determinism ------------------ *)

let anticorrelated n m seed =
  let rng = Rrms_rng.Rng.create seed in
  Dataset.rows (Synthetic.anticorrelated rng ~n ~m)

let check_same_result what (a : Rrms_core.Hd_rrms.result)
    (b : Rrms_core.Hd_rrms.result) =
  Alcotest.(check (array int))
    (what ^ ": same selection")
    a.Rrms_core.Hd_rrms.selected b.Rrms_core.Hd_rrms.selected;
  Alcotest.(check (float 0.))
    (what ^ ": same eps_min")
    a.Rrms_core.Hd_rrms.eps_min b.Rrms_core.Hd_rrms.eps_min;
  Alcotest.(check (float 0.))
    (what ^ ": same discretized regret")
    a.Rrms_core.Hd_rrms.discretized_regret
    b.Rrms_core.Hd_rrms.discretized_regret

let test_probe_cap_deterministic () =
  let points = anticorrelated 400 3 7 in
  let solve domains =
    let guard = Guard.Budget.create ~max_probes:2 () in
    Rrms_core.Hd_rrms.solve ~gamma:4 ~domains ~guard points ~r:3
  in
  let a = solve 1 and b = solve 1 and c = solve 4 in
  check_same_result "run vs rerun" a b;
  check_same_result "domains 1 vs 4" a c;
  (match a.Rrms_core.Hd_rrms.quality with
  | Guard.Degraded reasons
    when List.exists
           (function Guard.Probe_cap _ -> true | _ -> false)
           reasons ->
      ()
  | q -> Alcotest.fail ("expected Probe_cap degradation, got " ^ Guard.describe q));
  (* A 2-probe prefix of the binary search can't have converged on this
     matrix, so the degraded answer must differ from the exact one in
     eps — the cap really did bite. *)
  let exact = Rrms_core.Hd_rrms.solve ~gamma:4 ~domains:1 points ~r:3 in
  Alcotest.(check bool) "exact run is exact" true
    (Guard.is_exact exact.Rrms_core.Hd_rrms.quality)

let test_timeout_fallback_certified () =
  let points = anticorrelated 400 3 11 in
  let solve domains =
    (* timeout 0: expired before the first probe — the deterministic
       certified-fallback path. *)
    let guard = Guard.Budget.create ~timeout:0. () in
    Rrms_core.Hd_rrms.solve ~gamma:4 ~domains ~guard points ~r:3
  in
  let a = solve 1 and b = solve 1 and c = solve 4 in
  check_same_result "run vs rerun" a b;
  check_same_result "domains 1 vs 4" a c;
  Alcotest.(check bool) "non-empty selection" true
    (Array.length a.Rrms_core.Hd_rrms.selected > 0);
  (match a.Rrms_core.Hd_rrms.quality with
  | Guard.Degraded reasons
    when List.exists (function Guard.Deadline _ -> true | _ -> false) reasons
    ->
      ()
  | q ->
      Alcotest.fail ("expected Deadline degradation, got " ^ Guard.describe q));
  (* The anytime guarantee: the certified bound must dominate the true
     regret of the returned set (independent exact LP evaluation). *)
  let true_regret =
    Rrms_core.Regret.exact_lp ~selected:a.Rrms_core.Hd_rrms.selected points
  in
  Alcotest.(check bool)
    (Printf.sprintf "true regret %g <= certified bound %g" true_regret
       a.Rrms_core.Hd_rrms.guarantee)
    true
    (true_regret <= a.Rrms_core.Hd_rrms.guarantee +. 1e-9)

let test_hd_greedy_budget_truncates () =
  let points = anticorrelated 300 3 13 in
  let run domains =
    let guard = Guard.Budget.create ~max_probes:2 () in
    Rrms_core.Hd_greedy.solve ~gamma:4 ~domains ~guard points ~r:5
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check (array int)) "domains 1 vs 4" a.Rrms_core.Hd_greedy.selected
    b.Rrms_core.Hd_greedy.selected;
  Alcotest.(check int) "truncated to the probe cap" 2
    (Array.length a.Rrms_core.Hd_greedy.selected);
  Alcotest.(check bool) "degraded" false
    (Guard.is_exact a.Rrms_core.Hd_greedy.quality)

let test_greedy_budget_truncates () =
  let points = anticorrelated 60 3 17 in
  let guard = Guard.Budget.create ~max_probes:1 () in
  let res = Rrms_core.Greedy.solve ~guard points ~r:4 in
  (* Seed + one augmentation step = 2 tuples. *)
  Alcotest.(check int) "seed + capped steps" 2
    (Array.length res.Rrms_core.Greedy.selected);
  Alcotest.(check bool) "degraded" false
    (Guard.is_exact res.Rrms_core.Greedy.quality)

(* -------------------------- γ auto-shrink ------------------------- *)

let test_gamma_autoshrink_largest_fit () =
  let points = anticorrelated 300 4 19 in
  let sky = Rrms_skyline.Skyline.sfs points in
  let s = Array.length sky in
  let cap = s * 64 in
  (* between (γ=3+1)^3=64 and (γ=4+1)^3=125 cells per row *)
  let guard = Guard.Budget.create ~max_cells:cap () in
  let res = Rrms_core.Hd_rrms.solve ~gamma:8 ~guard points ~r:4 in
  let g = res.Rrms_core.Hd_rrms.gamma_used in
  Alcotest.(check int) "largest fitting gamma" 3 g;
  Alcotest.(check bool) "fits the cap" true
    (Rrms_core.Discretize.matrix_cells ~rows:s ~gamma:g ~m:4 <= cap);
  Alcotest.(check bool) "gamma+1 would not fit" true
    (Rrms_core.Discretize.matrix_cells ~rows:s ~gamma:(g + 1) ~m:4 > cap);
  (match res.Rrms_core.Hd_rrms.quality with
  | Guard.Degraded reasons
    when List.exists
           (function
             | Guard.Cell_cap { gamma_from = 8; gamma_to; _ } -> gamma_to = g
             | _ -> false)
           reasons ->
      ()
  | q -> Alcotest.fail ("expected Cell_cap degradation, got " ^ Guard.describe q));
  (* The shrunk run still certifies: bound >= true regret. *)
  let true_regret =
    Rrms_core.Regret.exact_lp ~selected:res.Rrms_core.Hd_rrms.selected points
  in
  Alcotest.(check bool) "bound dominates true regret" true
    (true_regret <= res.Rrms_core.Hd_rrms.guarantee +. 1e-9)

let test_gamma_autoshrink_impossible () =
  let points = anticorrelated 300 4 23 in
  let guard = Guard.Budget.create ~max_cells:10 () in
  try
    ignore (Rrms_core.Hd_rrms.solve ~guard points ~r:4);
    Alcotest.fail "expected Resource_limit"
  with Guard.Error.Guard_error (Guard.Error.Resource_limit _) -> ()

(* -------------------------- fault injection ----------------------- *)

let pool_sizes = [ 1; 2; 4 ]

(* Each index sleeps a little, so with >= 2 domains the spawned worker
   is certain to pick up at least one chunk while the main domain is
   busy — the raise fault then fires on the worker, not the caller. *)
let slow_parallel_sum domains =
  let n = 32 in
  let acc = Array.make n 0 in
  Rrms_parallel.parallel_for ~domains ~min_chunk:1 n (fun i ->
      Unix.sleepf 0.004;
      acc.(i) <- i);
  Array.fold_left ( + ) 0 acc

let test_fault_raise_propagates () =
  Fun.protect
    ~finally:(fun () -> Rrms_parallel.Fault.clear ())
    (fun () ->
      List.iter
        (fun domains ->
          Rrms_parallel.Fault.set ~worker:1 Rrms_parallel.Fault.Raise;
          if domains = 1 then
            (* Worker 1 does not exist in a serial run: the fault is a
               no-op and the loop completes. *)
            Alcotest.(check int) "serial unaffected" (31 * 32 / 2)
              (slow_parallel_sum domains)
          else begin
            match slow_parallel_sum domains with
            | _ -> Alcotest.failf "expected Injected at %d domains" domains
            | exception Rrms_parallel.Fault.Injected 1 -> ()
          end;
          (* The pool must stay healthy for the next batch. *)
          Rrms_parallel.Fault.clear ();
          Alcotest.(check int)
            (Printf.sprintf "pool healthy after fault (%d domains)" domains)
            (31 * 32 / 2) (slow_parallel_sum domains))
        pool_sizes)

let test_fault_raise_on_main () =
  Fun.protect
    ~finally:(fun () -> Rrms_parallel.Fault.clear ())
    (fun () ->
      (* Worker 0 is the calling domain: the serial fallback must also
         hit the hook. *)
      Rrms_parallel.Fault.set ~worker:0 Rrms_parallel.Fault.Raise;
      match Rrms_parallel.parallel_for ~domains:1 4 (fun _ -> ()) with
      | () -> Alcotest.fail "expected Injected on the serial path"
      | exception Rrms_parallel.Fault.Injected 0 -> ())

let test_fault_stall_correct_results () =
  Fun.protect
    ~finally:(fun () -> Rrms_parallel.Fault.clear ())
    (fun () ->
      let reference = slow_parallel_sum 1 in
      List.iter
        (fun domains ->
          Rrms_parallel.Fault.set ~worker:1
            (Rrms_parallel.Fault.Stall 0.002);
          Alcotest.(check int)
            (Printf.sprintf "stall leaves results intact (%d domains)" domains)
            reference (slow_parallel_sum domains);
          (* And a full solver run under stall stays bit-identical. *)
          let points = anticorrelated 200 3 29 in
          let faulted =
            Rrms_core.Hd_rrms.solve ~gamma:3 ~domains points ~r:3
          in
          Rrms_parallel.Fault.clear ();
          let clean = Rrms_core.Hd_rrms.solve ~gamma:3 ~domains points ~r:3 in
          check_same_result
            (Printf.sprintf "stalled vs clean (%d domains)" domains)
            faulted clean)
        pool_sizes)

let test_fault_env_parsing () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "RRMS_FAULT" "";
      Rrms_parallel.Fault.clear ())
    (fun () ->
      Rrms_parallel.Fault.clear ();
      Unix.putenv "RRMS_FAULT" "stall@1:0.001";
      Rrms_parallel.Fault.configure_from_env ();
      Alcotest.(check bool) "stall spec armed" true
        (Rrms_parallel.Fault.active ());
      Rrms_parallel.Fault.clear ();
      Unix.putenv "RRMS_FAULT" "not-a-spec";
      Rrms_parallel.Fault.configure_from_env ();
      Alcotest.(check bool) "malformed spec ignored" false
        (Rrms_parallel.Fault.active ()))

let suite =
  [
    Alcotest.test_case "error exit codes" `Quick test_error_exit_codes;
    Alcotest.test_case "budget basics" `Quick test_budget_basics;
    Alcotest.test_case "strict CSV: line+column" `Quick
      test_strict_rejects_with_location;
    Alcotest.test_case "lenient CSV: drop+report" `Quick
      test_lenient_drops_and_reports;
    Alcotest.test_case "strict CSV: empty file" `Quick test_strict_empty_file;
    Alcotest.test_case "simplex pivot cap" `Quick test_simplex_pivot_cap;
    Alcotest.test_case "probe cap deterministic" `Quick
      test_probe_cap_deterministic;
    Alcotest.test_case "timeout fallback certified" `Quick
      test_timeout_fallback_certified;
    Alcotest.test_case "hd-greedy budget truncates" `Quick
      test_hd_greedy_budget_truncates;
    Alcotest.test_case "greedy budget truncates" `Quick
      test_greedy_budget_truncates;
    Alcotest.test_case "gamma auto-shrink largest fit" `Quick
      test_gamma_autoshrink_largest_fit;
    Alcotest.test_case "gamma auto-shrink impossible" `Quick
      test_gamma_autoshrink_impossible;
    Alcotest.test_case "fault: raise propagates" `Slow
      test_fault_raise_propagates;
    Alcotest.test_case "fault: raise on main" `Quick test_fault_raise_on_main;
    Alcotest.test_case "fault: stall keeps results" `Slow
      test_fault_stall_correct_results;
    Alcotest.test_case "fault: env parsing" `Quick test_fault_env_parsing;
  ]
