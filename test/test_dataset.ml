(* Tests for dataset storage, projection and CSV round-trips. *)

open Rrms_dataset

let mk () =
  Dataset.create ~name:"t"
    ~attributes:[| "x"; "y" |]
    [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 0. |] |]

let test_accessors () =
  let d = mk () in
  Alcotest.(check string) "name" "t" (Dataset.name d);
  Alcotest.(check int) "size" 3 (Dataset.size d);
  Alcotest.(check int) "dim" 2 (Dataset.dim d);
  Alcotest.(check (float 0.)) "value" 4. (Dataset.value d 1 1);
  Alcotest.(check (array (float 0.))) "row" [| 5.; 0. |] (Dataset.row d 2)

let expect_invalid_input what f =
  try
    ignore (f ());
    Alcotest.fail (Printf.sprintf "expected %s failure" what)
  with
  | Rrms_guard.Guard.Error.Guard_error
      (Rrms_guard.Guard.Error.Invalid_input _) ->
      ()

let test_create_validation () =
  expect_invalid_input "no-attributes" (fun () ->
      Dataset.create ~attributes:[||] [||]);
  expect_invalid_input "row-length" (fun () ->
      Dataset.create ~attributes:[| "x" |] [| [| 1.; 2. |] |]);
  expect_invalid_input "negative-value" (fun () ->
      Dataset.create ~attributes:[| "x" |] [| [| -1. |] |]);
  expect_invalid_input "nan" (fun () ->
      Dataset.create ~attributes:[| "x" |] [| [| Float.nan |] |])

let test_project () =
  let d = mk () in
  let p = Dataset.project d [| 1 |] in
  Alcotest.(check int) "projected dim" 1 (Dataset.dim p);
  Alcotest.(check (array string)) "projected attrs" [| "y" |] (Dataset.attributes p);
  Alcotest.(check (float 0.)) "projected value" 2. (Dataset.value p 0 0);
  (* Reordering projection. *)
  let p2 = Dataset.project d [| 1; 0 |] in
  Alcotest.(check (array (float 0.))) "reordered row" [| 2.; 1. |] (Dataset.row p2 0)

let test_take_select () =
  let d = mk () in
  Alcotest.(check int) "take 2" 2 (Dataset.size (Dataset.take d 2));
  Alcotest.(check int) "take beyond" 3 (Dataset.size (Dataset.take d 10));
  let s = Dataset.select d [| 2; 0 |] in
  Alcotest.(check (array (float 0.))) "select order" [| 5.; 0. |] (Dataset.row s 0);
  Alcotest.(check (array (float 0.))) "select order 2" [| 1.; 2. |] (Dataset.row s 1)

let test_normalize () =
  let d = mk () in
  let n = Dataset.normalize d in
  Alcotest.(check (float 1e-12)) "max scaled to 1" 1. (Dataset.value n 2 0);
  Alcotest.(check (float 1e-12)) "proportions kept" 0.2 (Dataset.value n 0 0);
  Alcotest.(check (float 1e-12)) "second column" 1. (Dataset.value n 1 1);
  (* Zero column untouched. *)
  let z =
    Dataset.create ~attributes:[| "x"; "y" |] [| [| 0.; 1. |]; [| 0.; 3. |] |]
  in
  let nz = Dataset.normalize z in
  Alcotest.(check (float 0.)) "zero column unchanged" 0. (Dataset.value nz 1 0)

let test_csv_roundtrip () =
  let d = mk () in
  let path = Filename.temp_file "rrms_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset.to_csv d path;
      let d' = Dataset.of_csv path in
      Alcotest.(check int) "size" (Dataset.size d) (Dataset.size d');
      Alcotest.(check (array string))
        "attributes" (Dataset.attributes d) (Dataset.attributes d');
      for i = 0 to Dataset.size d - 1 do
        Alcotest.(check (array (float 0.)))
          "row" (Dataset.row d i) (Dataset.row d' i)
      done)

let test_csv_malformed () =
  let path = Filename.temp_file "rrms_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "x,y\n1.0\n";
      close_out oc;
      expect_invalid_input "malformed-csv" (fun () -> Dataset.of_csv path))

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "take/select" `Quick test_take_select;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv malformed" `Quick test_csv_malformed;
  ]
