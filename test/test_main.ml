let () =
  (* RRMS_DOMAINS ∈ {1, 4, …} must leave every result unchanged; CI runs
     the whole suite under both.  RRMS_FAULT (e.g. stall@1:0.001) arms
     pool fault injection for the entire run — CI uses the stall
     variant, under which every test must still pass. *)
  Rrms_parallel.Pool.configure_from_env ();
  (* The determinism suites compare real multi-domain runs against
     serial ones; lift the hardware parallelism cap so requesting 4
     domains actually crosses domains even on a 1-core CI box.
     (RRMS_POOL_CAP, read above, still wins when set.) *)
  if Sys.getenv_opt "RRMS_POOL_CAP" = None then
    Rrms_parallel.Pool.set_parallel_cap 16;
  Rrms_parallel.Fault.configure_from_env ();
  (* RRMS_OBS=full must also leave every result unchanged; CI runs the
     suite with observability fully on. *)
  Rrms_obs.Obs.configure_from_env ();
  Alcotest.run "rrms"
    [
      ("rng", Test_rng.suite);
      ("vec", Test_vec.suite);
      ("polar", Test_polar.suite);
      ("hull2d", Test_hull2d.suite);
      ("simplex", Test_simplex.suite);
      ("dataset", Test_dataset.suite);
      ("synthetic", Test_synthetic.suite);
      ("realistic", Test_realistic.suite);
      ("skyline", Test_skyline.suite);
      ("setcover", Test_setcover.suite);
      ("regret", Test_regret.suite);
      ("rrms2d", Test_rrms2d.suite);
      ("findings", Test_findings.suite);
      ("sweepline", Test_sweepline.suite);
      ("discretize", Test_discretize.suite);
      ("matrix-mrst", Test_matrix_mrst.suite);
      ("hd", Test_hd.suite);
      ("hd-budget", Test_hd.budget_suite);
      ("greedy-seeds", Test_hd.seed_suite);
      ("extras", Test_extras.suite);
      ("onion", Test_onion.suite);
      ("kregret", Test_kregret.suite);
      ("eps-kernel", Test_eps_kernel.suite);
      ("report", Test_report.suite);
      ("cli", Test_cli.suite);
      ("robustness", Test_robustness.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("dynamic2d", Test_dynamic2d.suite);
      ("dynamic-hd", Test_dynamic_hd.suite);
      ("examples", Test_examples.suite);
      ("properties", Test_properties.suite);
      ("parallel", Test_parallel.suite);
      ("guard", Test_guard.suite);
      ("obs", Test_obs.suite);
      ("oracle", Test_oracle.suite);
      ("serve", Test_serve.suite);
      ("shard", Test_shard.suite);
      ("persist", Test_persist.suite);
      ("mutate", Test_mutate.suite);
    ]
