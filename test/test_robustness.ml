(* Robustness and stress tests: malformed-input handling, randomized
   round-trips, 3-variable LP cross-checks, and larger-scale smoke runs
   that guard against stack overflows and quadratic blowups sneaking
   into the linearithmic paths. *)

open Rrms_dataset

(* ------------------------- CSV round-trips ------------------------ *)

let dataset_gen =
  QCheck.Gen.(
    let* m = int_range 1 5 in
    (* n >= 1: of_csv structurally rejects a header-only file, so an
       empty dataset cannot round-trip through CSV by design. *)
    let* n = int_range 1 40 in
    let* rows =
      list_size (return n)
        (array_size (return m) (float_range 0. 1000.))
    in
    return
      (Dataset.create
         ~attributes:(Array.init m (fun j -> Printf.sprintf "c%d" j))
         (Array.of_list rows)))

let prop_csv_roundtrip =
  QCheck.Test.make ~count:50 ~name:"CSV round-trip preserves every value"
    (QCheck.make dataset_gen)
    (fun d ->
      let path = Filename.temp_file "rrms_prop" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Dataset.to_csv d path;
          let d' = Dataset.of_csv path in
          Dataset.size d = Dataset.size d'
          && Dataset.attributes d = Dataset.attributes d'
          && List.for_all
               (fun i -> Dataset.row d i = Dataset.row d' i)
               (List.init (Dataset.size d) Fun.id)))

let test_csv_fuzz_no_crash () =
  (* Random junk must produce a structured Invalid_input (not a crash
     or a bogus accept of non-numeric rows). *)
  let rng = Rrms_rng.Rng.create 191 in
  let junk_line () =
    String.init
      (1 + Rrms_rng.Rng.int rng 20)
      (fun _ ->
        let alphabet = "abc,;0.19-xyz " in
        alphabet.[Rrms_rng.Rng.int rng (String.length alphabet)])
  in
  for _ = 1 to 50 do
    let path = Filename.temp_file "rrms_fuzz" ".csv" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc "x,y\n";
        for _ = 1 to 5 do
          output_string oc (junk_line ());
          output_char oc '\n'
        done;
        close_out oc;
        match Dataset.of_csv path with
        | _ -> () (* junk may coincidentally parse; that's fine *)
        | exception Rrms_guard.Guard.Error.Guard_error
            (Rrms_guard.Guard.Error.Invalid_input _) ->
            ())
  done

(* --------------------- 3-variable LP cross-check ------------------ *)

(* Enumerate candidate vertices of a 3-variable LP as intersections of
   three tight constraints (from rows and coordinate planes) and return
   the best feasible objective. *)
let brute_force_3var c rows =
  let planes =
    ([| 1.; 0.; 0. |], 0.) :: ([| 0.; 1.; 0. |], 0.) :: ([| 0.; 0.; 1. |], 0.)
    :: List.map (fun (a, _, b) -> (a, b)) rows
  in
  let solve3 (a1, b1) (a2, b2) (a3, b3) =
    let det =
      a1.(0) *. ((a2.(1) *. a3.(2)) -. (a2.(2) *. a3.(1)))
      -. (a1.(1) *. ((a2.(0) *. a3.(2)) -. (a2.(2) *. a3.(0))))
      +. (a1.(2) *. ((a2.(0) *. a3.(1)) -. (a2.(1) *. a3.(0))))
    in
    if Float.abs det < 1e-9 then None
    else begin
      (* Cramer's rule. *)
      let col k b =
        let m = Array.map Array.copy [| a1; a2; a3 |] in
        m.(0).(k) <- b.(0);
        m.(1).(k) <- b.(1);
        m.(2).(k) <- b.(2);
        m
      in
      let det3 m =
        m.(0).(0) *. ((m.(1).(1) *. m.(2).(2)) -. (m.(1).(2) *. m.(2).(1)))
        -. (m.(0).(1) *. ((m.(1).(0) *. m.(2).(2)) -. (m.(1).(2) *. m.(2).(0))))
        +. (m.(0).(2) *. ((m.(1).(0) *. m.(2).(1)) -. (m.(1).(1) *. m.(2).(0))))
      in
      let b = [| b1; b2; b3 |] in
      Some
        [|
          det3 (col 0 b) /. det; det3 (col 1 b) /. det; det3 (col 2 b) /. det;
        |]
    end
  in
  let feasible x =
    Array.for_all (fun v -> v >= -1e-7) x
    && List.for_all
         (fun (a, rel, b) ->
           let v = (a.(0) *. x.(0)) +. (a.(1) *. x.(1)) +. (a.(2) *. x.(2)) in
           match rel with
           | Rrms_lp.Simplex.Le -> v <= b +. 1e-6
           | Rrms_lp.Simplex.Ge -> v >= b -. 1e-6
           | Rrms_lp.Simplex.Eq -> Float.abs (v -. b) <= 1e-6)
         rows
  in
  let best = ref None in
  let arr = Array.of_list planes in
  let k = Array.length arr in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      for l = j + 1 to k - 1 do
        match solve3 arr.(i) arr.(j) arr.(l) with
        | None -> ()
        | Some x ->
            if feasible x then begin
              let v =
                (c.(0) *. x.(0)) +. (c.(1) *. x.(1)) +. (c.(2) *. x.(2))
              in
              match !best with
              | Some b when b >= v -> ()
              | _ -> best := Some v
            end
      done
    done
  done;
  !best

let test_simplex_3var_vs_brute_force () =
  let rng = Rrms_rng.Rng.create 192 in
  let disagreements = ref 0 in
  for _ = 1 to 150 do
    let c = Array.init 3 (fun _ -> Rrms_rng.Rng.uniform rng (-4.) 4.) in
    let nrows = 1 + Rrms_rng.Rng.int rng 4 in
    let rows =
      List.init nrows (fun _ ->
          let a = Array.init 3 (fun _ -> Rrms_rng.Rng.uniform rng (-2.) 2.) in
          let rel =
            if Rrms_rng.Rng.bool rng then Rrms_lp.Simplex.Le
            else Rrms_lp.Simplex.Ge
          in
          (a, rel, Rrms_rng.Rng.uniform rng (-3.) 6.))
    in
    let constraints =
      List.map (fun (a, rel, b) -> Rrms_lp.Simplex.constraint_ a rel b) rows
    in
    match Rrms_lp.Simplex.maximize ~c constraints with
    | Rrms_lp.Simplex.Optimal { objective; solution } -> (
        Array.iter
          (fun v -> Alcotest.(check bool) "x >= 0" true (v >= -1e-7))
          solution;
        match brute_force_3var c rows with
        | Some best ->
            if Float.abs (best -. objective) > 1e-4 then incr disagreements
        | None -> incr disagreements)
    | Rrms_lp.Simplex.Infeasible ->
        if brute_force_3var c rows <> None then incr disagreements
    | Rrms_lp.Simplex.Unbounded -> ()
    | Rrms_lp.Simplex.Degenerate _ -> ()
  done;
  Alcotest.(check int) "no disagreements with 3-var brute force" 0 !disagreements

(* ----------------------------- stress ----------------------------- *)

let test_large_2d_pipeline () =
  (* 200K tuples end to end through the linearithmic path: guards
     against accidental recursion depth and quadratic regressions. *)
  let rng = Rrms_rng.Rng.create 193 in
  let d = Synthetic.anticorrelated rng ~n:200_000 ~m:2 in
  let points = Dataset.rows d in
  let t0 = Unix.gettimeofday () in
  let res = Rrms_core.Rrms2d.solve points ~r:8 in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "finished quickly" true (elapsed < 10.);
  Alcotest.(check bool) "sane regret" true
    (res.Rrms_core.Rrms2d.regret >= 0. && res.Rrms_core.Rrms2d.regret <= 1.);
  Alcotest.(check bool) "within budget" true
    (Array.length res.Rrms_core.Rrms2d.selected <= 8)

let test_large_dnc_skyline () =
  let rng = Rrms_rng.Rng.create 194 in
  let d = Synthetic.independent rng ~n:100_000 ~m:3 in
  let points = Dataset.rows d in
  let dc = Rrms_skyline.Skyline.divide_and_conquer points in
  let sfs = Rrms_skyline.Skyline.sfs points in
  Alcotest.(check int) "d&c = sfs at scale" (Array.length sfs) (Array.length dc)

let test_deep_onion () =
  (* Fully peeling a few thousand points must terminate and partition. *)
  let rng = Rrms_rng.Rng.create 195 in
  let points =
    Array.init 3_000 (fun _ ->
        [| Rrms_rng.Rng.float rng 1.; Rrms_rng.Rng.float rng 1. |])
  in
  let onion = Rrms_core.Onion.build points in
  Alcotest.(check bool) "exhaustive" true (Rrms_core.Onion.exhaustive onion);
  Alcotest.(check int) "partition size" 3_000
    (Rrms_core.Onion.size_upto onion (Rrms_core.Onion.depth onion))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
    Alcotest.test_case "csv fuzz no crash" `Quick test_csv_fuzz_no_crash;
    Alcotest.test_case "simplex 3-var vs brute force" `Slow
      test_simplex_3var_vs_brute_force;
    Alcotest.test_case "large 2D pipeline" `Slow test_large_2d_pipeline;
    Alcotest.test_case "large d&c skyline" `Slow test_large_dnc_skyline;
    Alcotest.test_case "deep onion" `Slow test_deep_onion;
  ]
