(* The shard layer end to end: partition arithmetic (and its agreement
   with Store.load ?shard), skyline decomposability over arbitrary
   partitions, the certified merge path (bit-identical to the unsharded
   store for every algorithm, shard count and domain count), the union
   merge path (degraded, with a certified regret bound dominating the
   true regret), the batch request (one dataset resolve amortized over
   many queries), a pin/release hammer for the refcount race, and the
   fan-out router over real worker sockets and scripted stub workers
   (crash mid-request, deadline propagation). *)

module Serve = Rrms_serve
module Json = Serve.Json
module Protocol = Serve.Protocol
module Store = Serve.Store
module Server = Serve.Server
module Shard = Serve.Shard
module Obs = Rrms_obs.Obs
module Dataset = Rrms_dataset.Dataset
module Skyline = Rrms_skyline.Skyline
module Regret = Rrms_core.Regret
module Guard = Rrms_guard.Guard

let contains = Astring_contains.contains
let counter = Obs.Counter.value
let with_counters = Test_serve.with_counters
let with_csv = Test_serve.with_csv
let query = Test_serve.query

let parse_json line =
  match Json.parse line with
  | Ok j -> j
  | Error e -> Alcotest.fail (Printf.sprintf "unparseable %s: %s" line e)

let int_array = function
  | Some (Json.Arr l) ->
      Array.of_list
        (List.map
           (fun j ->
             match Json.int_ j with
             | Some i -> i
             | None -> Alcotest.fail "non-integer index")
           l)
  | _ -> Alcotest.fail "missing index array"

(* ------------------------------------------------------------------ *)
(* Partition arithmetic                                               *)
(* ------------------------------------------------------------------ *)

let test_partition_roundrobin () =
  List.iter
    (fun shards ->
      List.iter
        (fun n ->
          let parts = Shard.partition ~shards n in
          Alcotest.(check int) "one member per shard" shards (Array.length parts);
          let seen = Array.make (max n 1) false in
          Array.iteri
            (fun s idxs ->
              Array.iteri
                (fun l g ->
                  Alcotest.(check int) "round-robin arithmetic" (s + (l * shards))
                    g;
                  Alcotest.(check bool) "in range" true (g >= 0 && g < n);
                  Alcotest.(check bool) "disjoint" false seen.(g);
                  seen.(g) <- true)
                idxs)
            parts;
          Alcotest.(check int) "covering" n
            (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen))
        [ 0; 1; 2; 7; 100 ])
    [ 1; 2; 3; 8 ];
  match Shard.partition ~shards:0 5 with
  | exception Guard.Error.Guard_error (Guard.Error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "shards=0 must raise Invalid_input"

(* A worker process loading with ?shard and the in-process partition
   must own bit-identical slices — the certified merge depends on it. *)
let test_store_slice_agreement () =
  with_csv ~n:57 ~m:3 ~seed:5 (fun csv ->
      let full = Dataset.rows (Dataset.of_csv csv) in
      List.iter
        (fun shards ->
          let parts = Shard.partition ~shards (Array.length full) in
          for s = 0 to shards - 1 do
            let store = Store.create () in
            let l = Store.load store ~shard:(s, shards) csv in
            match Store.pin store l.Store.key with
            | None -> Alcotest.fail "worker slice must pin"
            | Some h ->
                let rows = Store.pinned_rows h in
                let expect = Array.map (fun g -> full.(g)) parts.(s) in
                Alcotest.(check int) "slice length" (Array.length expect)
                  (Array.length rows);
                Array.iteri
                  (fun i r ->
                    Alcotest.(check bool) "slice rows agree bitwise" true
                      (r = expect.(i)))
                  rows;
                Store.unpin store h
          done)
        [ 1; 2; 3; 8 ])

(* ------------------------------------------------------------------ *)
(* Skyline decomposability                                            *)
(* ------------------------------------------------------------------ *)

(* skyline(D) = skyline(∪ skyline(Dᵢ)) for random data, both the
   round-robin partition and a shuffled one, at N ∈ {1,2,3,8} — and the
   merged result is bit-identical (same order) to the direct sfs run. *)
let test_skyline_decomposability () =
  let rng = Rrms_rng.Rng.create 77 in
  List.iter
    (fun m ->
      let n = 180 in
      let pts =
        Array.init n (fun _ ->
            Array.init m (fun _ -> Rrms_rng.Rng.float rng 1.))
      in
      let whole = Skyline.sfs pts in
      let check label members =
        let parts =
          Array.map
            (fun idxs ->
              if Array.length idxs = 0 then [||]
              else
                let sub = Array.map (fun g -> pts.(g)) idxs in
                Array.map (fun l -> idxs.(l)) (Skyline.sfs sub))
            members
        in
        Alcotest.(check (array int))
          label whole
          (Skyline.merge_partitions pts parts)
      in
      List.iter
        (fun shards ->
          check
            (Printf.sprintf "round-robin m=%d N=%d" m shards)
            (Shard.partition ~shards n);
          let perm = Array.init n Fun.id in
          for i = n - 1 downto 1 do
            let j = Rrms_rng.Rng.int rng (i + 1) in
            let t = perm.(i) in
            perm.(i) <- perm.(j);
            perm.(j) <- t
          done;
          let buckets = Array.make shards [] in
          Array.iteri
            (fun i g -> buckets.(i mod shards) <- g :: buckets.(i mod shards))
            perm;
          check
            (Printf.sprintf "random partition m=%d N=%d" m shards)
            (Array.map
               (fun l -> Array.of_list (List.sort compare l))
               buckets))
        [ 1; 2; 3; 8 ])
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Certified merge: bit-identity                                      *)
(* ------------------------------------------------------------------ *)

let all_algos =
  [
    Protocol.A2d;
    Protocol.A2d_exact;
    Protocol.Sweepline;
    Protocol.Hd_rrms;
    Protocol.Hd_greedy;
    Protocol.Greedy;
    Protocol.Cube;
  ]

(* Every served algorithm, at every shard count × domain count in the
   acceptance grid, answers byte-identically to an unsharded store over
   the same dataset; and the warm repeat is a cache hit with the same
   bytes. *)
let test_certified_bit_identity () =
  with_csv ~n:220 ~m:2 ~seed:3 (fun csv ->
      List.iter
        (fun domains ->
          let base = Store.create ~domains () in
          let bl = Store.load base csv in
          List.iter
            (fun shards ->
              let sh = Shard.create ~domains ~shards () in
              let l = Shard.load sh csv in
              Alcotest.(check string) "same content key" bl.Store.key
                l.Store.key;
              List.iter
                (fun algo ->
                  let q = query ~algo ~r:3 ~gamma:4 l.Store.key in
                  let expect, _ = Test_serve.result_string base q in
                  let label =
                    Printf.sprintf "%s shards=%d domains=%d"
                      (Protocol.algo_to_string algo)
                      shards domains
                  in
                  match Shard.query sh q with
                  | Ok { Store.result; cached; _ } ->
                      Alcotest.(check bool)
                        ("cold not cached: " ^ label)
                        false cached;
                      Alcotest.(check string)
                        ("bit-identical: " ^ label)
                        expect (Json.to_string result);
                      (match Shard.query sh q with
                      | Ok { Store.result = r2; cached = c2; _ } ->
                          Alcotest.(check bool)
                            ("warm is a hit: " ^ label)
                            true c2;
                          Alcotest.(check string)
                            ("warm bytes: " ^ label)
                            expect (Json.to_string r2)
                      | Error _ -> Alcotest.fail ("warm failed: " ^ label))
                  | Error _ -> Alcotest.fail ("shard query failed: " ^ label))
                all_algos)
            [ 1; 2; 4 ])
        [ 1; 2; 4 ])

(* The HD algorithms again in higher dimension, across γ — the regret
   matrix row blocks must merge bit-identically too — plus a cell-cap
   query, whose auto-shrunk γ the shard layer must reproduce. *)
let test_certified_bit_identity_hd () =
  with_csv ~n:300 ~m:4 ~seed:9 (fun csv ->
      let base = Store.create ~domains:2 () in
      let bl = Store.load base csv in
      List.iter
        (fun shards ->
          let sh = Shard.create ~domains:2 ~shards () in
          ignore (Shard.load sh csv : Store.loaded);
          let check q label =
            let expect, _ = Test_serve.result_string base q in
            match Shard.query sh q with
            | Ok { Store.result; _ } ->
                Alcotest.(check string)
                  (Printf.sprintf "%s shards=%d" label shards)
                  expect (Json.to_string result)
            | Error _ -> Alcotest.fail (label ^ ": shard query failed")
          in
          List.iter
            (fun algo ->
              List.iter
                (fun gamma ->
                  check
                    (query ~algo ~r:4 ~gamma bl.Store.key)
                    (Printf.sprintf "m=4 %s gamma=%d"
                       (Protocol.algo_to_string algo)
                       gamma))
                [ 3; 5 ])
            [ Protocol.Hd_rrms; Protocol.Hd_greedy ];
          check
            (query ~algo:Protocol.Hd_rrms ~r:3 ~gamma:6 ~max_cells:400 ~cache:false
               bl.Store.key)
            "m=4 hd-rrms cell-capped")
        [ 1; 2; 4 ])

let test_shard_metrics_and_release () =
  with_counters (fun () ->
      with_csv ~n:120 ~m:3 (fun csv ->
          let sh = Shard.create ~domains:1 ~shards:3 () in
          let l = Shard.load sh csv in
          let q = query ~algo:Protocol.Hd_rrms ~r:3 l.Store.key in
          (match Shard.query sh q with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "cold shard query failed");
          Alcotest.(check int) "certified path counted" 1
            (counter Shard.Metrics.certified);
          Alcotest.(check int) "one skyline merge" 1
            (counter Shard.Metrics.skyline_merges);
          Alcotest.(check int) "one matrix merge" 1
            (counter Shard.Metrics.matrix_merges);
          (* skyline + best-score + row-fill fan-outs, 3 tasks each *)
          Alcotest.(check int) "fan-out tasks" 9
            (counter Shard.Metrics.fanouts);
          (match Shard.query sh q with
          | Ok { Store.cached = true; _ } -> ()
          | _ -> Alcotest.fail "warm shard query must hit the cache");
          Alcotest.(check int) "warm query never fans out" 9
            (counter Shard.Metrics.fanouts);
          let s = Json.to_string (Shard.stats sh) in
          Alcotest.(check bool) "stats reports the topology" true
            (contains s "\"shards\":3");
          Alcotest.(check bool) "stats reports sub-store admission" true
            (contains s "\"sub_stores\"");
          match Shard.release sh l.Store.key with
          | Store.Released { freed = true; _ } -> (
              match Shard.query sh q with
              | Error `Unknown_dataset -> ()
              | _ -> Alcotest.fail "freed dataset must be unknown")
          | _ -> Alcotest.fail "release must free the only reference"))

(* ------------------------------------------------------------------ *)
(* Union merge: the certified bound                                   *)
(* ------------------------------------------------------------------ *)

let test_union_bound () =
  with_csv ~n:200 ~m:3 ~seed:13 (fun csv ->
      let rows = Dataset.rows (Dataset.of_csv csv) in
      let sh = Shard.create ~domains:2 ~shards:3 () in
      let l = Shard.load sh csv in
      List.iter
        (fun algo ->
          let q = query ~algo ~r:3 ~gamma:6 l.Store.key in
          match Shard.query ~merge:Shard.Union sh q with
          | Error _ -> Alcotest.fail "union query failed"
          | Ok { Store.result; cached; _ } ->
              Alcotest.(check bool) "union answers are never cached" false
                cached;
              let s = Json.to_string result in
              Alcotest.(check bool) "flagged degraded" true
                (contains s "\"degraded\":true");
              Alcotest.(check bool) "tagged as union merge" true
                (contains s "\"merge\":\"union\"");
              let selected = int_array (Json.member "selected" result) in
              Alcotest.(check bool) "selected non-empty" true
                (Array.length selected > 0);
              Alcotest.(check bool) "at most r·N tuples" true
                (Array.length selected <= 3 * 3);
              Array.iteri
                (fun i g ->
                  Alcotest.(check bool) "global index in range" true
                    (g >= 0 && g < Array.length rows);
                  if i > 0 then
                    Alcotest.(check bool) "ascending, duplicate-free" true
                      (selected.(i - 1) < g))
                selected;
              let bound =
                match Json.member "regret_bound" result with
                | Some (Json.Num v) -> v
                | _ -> Alcotest.fail "regret_bound missing"
              in
              let true_regret = Regret.exact_lp ~selected rows in
              Alcotest.(check bool)
                (Printf.sprintf "bound %.6f dominates true regret %.6f" bound
                   true_regret)
                true
                (bound +. 1e-9 >= true_regret);
              (match Shard.query ~merge:Shard.Union sh q with
              | Ok { Store.cached = false; _ } -> ()
              | _ -> Alcotest.fail "repeated union answer must stay uncached");
              (* ... and must not have polluted the exact-result cache *)
              (match Shard.query sh q with
              | Ok { Store.result = r; cached = false; _ } ->
                  Alcotest.(check bool) "certified after union is exact" false
                    (contains (Json.to_string r) "\"merge\":\"union\"")
              | _ -> Alcotest.fail "certified query after union failed"))
        [ Protocol.Hd_rrms; Protocol.Hd_greedy ])

(* ------------------------------------------------------------------ *)
(* Sessions over pipes                                                *)
(* ------------------------------------------------------------------ *)

let open_session handler =
  let to_r, to_w = Unix.pipe () in
  let from_r, from_w = Unix.pipe () in
  let th =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr to_r in
        let oc = Unix.out_channel_of_descr from_w in
        ignore (Server.run_handler_session handler ic oc : [ `Eof | `Shutdown ]);
        close_out_noerr oc)
      ()
  in
  let out = Unix.out_channel_of_descr to_w in
  let inp = Unix.in_channel_of_descr from_r in
  let rpc line =
    output_string out line;
    output_char out '\n';
    flush out;
    input_line inp
  in
  let close () =
    close_out_noerr out;
    Thread.join th;
    close_in_noerr inp;
    try Unix.close to_r with Unix.Unix_error _ -> ()
  in
  (rpc, close)

let batch_items line =
  let j = parse_json line in
  Alcotest.(check bool) "batch reply ok" true (contains line "\"ok\":true");
  match Option.bind (Json.member "result" j) (Json.member "results") with
  | Some (Json.Arr items) -> Array.of_list items
  | _ -> Alcotest.fail ("no results member in " ^ line)

let item_result item =
  match Json.member "result" item with
  | Some r -> Json.to_string r
  | None -> Alcotest.fail ("batch item without result: " ^ Json.to_string item)

let item_code item =
  match Option.bind (Json.member "error" item) (Json.member "code") with
  | Some (Json.Str c) -> c
  | _ -> "ok"

(* ------------------------------------------------------------------ *)
(* Batch protocol                                                     *)
(* ------------------------------------------------------------------ *)

(* One resolve amortizes the whole batch; items answer in order,
   byte-identically to single queries; a malformed item (or one that
   contradicts the batch dataset) is a per-item error and the rest
   still run. *)
let test_batch_protocol () =
  with_counters (fun () ->
      with_csv ~n:150 ~m:3 (fun csv ->
          let store = Store.create () in
          let rpc, close = open_session (Server.store_handler store) in
          Fun.protect ~finally:close (fun () ->
              let load =
                rpc
                  (Printf.sprintf "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}"
                     csv)
              in
              Alcotest.(check bool) "load ok" true (contains load "\"ok\":true");
              let r0 = counter Store.Metrics.resolves in
              let s1 =
                rpc "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"cube\",\"r\":3}"
              in
              let s2 =
                rpc
                  "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3,\"gamma\":4}"
              in
              let s3 =
                rpc
                  "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":4,\"gamma\":4}"
              in
              Alcotest.(check int) "k singles resolve k times" 3
                (counter Store.Metrics.resolves - r0);
              let r1 = counter Store.Metrics.resolves in
              let batch =
                rpc
                  (String.concat ""
                     [
                       "{\"id\":9,\"req\":\"batch\",\"dataset\":\"d\",\"items\":[";
                       "{\"algo\":\"cube\",\"r\":3},";
                       "{\"algo\":\"hd-rrms\",\"r\":3},";
                       "{\"algo\":\"nope\",\"r\":1},";
                       "{\"dataset\":\"other\",\"algo\":\"cube\",\"r\":3},";
                       "{\"algo\":\"hd-rrms\",\"r\":4}";
                       "]}";
                     ])
              in
              Alcotest.(check int) "a batch resolves once" 1
                (counter Store.Metrics.resolves - r1);
              let items = batch_items batch in
              Alcotest.(check int) "five items answered" 5 (Array.length items);
              Alcotest.(check bool) "count echoed" true
                (contains batch "\"count\":5");
              let single line =
                match Test_serve.member_string "result" line with
                | Some s -> s
                | None -> Alcotest.fail ("single reply without result: " ^ line)
              in
              Alcotest.(check string) "item 0 = single cube" (single s1)
                (item_result items.(0));
              Alcotest.(check string) "item 1 = single hd r=3" (single s2)
                (item_result items.(1));
              Alcotest.(check string) "item 4 = single hd r=4" (single s3)
                (item_result items.(4));
              Alcotest.(check bool) "warm items are cache hits" true
                (contains (Json.to_string items.(1)) "\"cached\":true");
              Alcotest.(check string) "item 2 is a per-item error"
                "bad_request" (item_code items.(2));
              Alcotest.(check bool) "error names the item" true
                (contains (Json.to_string items.(2)) "item 2");
              Alcotest.(check string) "contradicting dataset is per-item"
                "bad_request" (item_code items.(3));
              let ghost =
                rpc
                  "{\"req\":\"batch\",\"dataset\":\"ghost\",\"items\":[{\"algo\":\"cube\",\"r\":2}]}"
              in
              Alcotest.(check bool) "unknown dataset is batch-level" true
                (contains ghost "\"code\":\"unknown_dataset\"");
              let empty =
                rpc "{\"req\":\"batch\",\"dataset\":\"d\",\"items\":[]}"
              in
              Alcotest.(check bool) "empty items rejected" true
                (contains empty "\"code\":\"bad_request\""))))

(* ------------------------------------------------------------------ *)
(* Refcount hammer                                                    *)
(* ------------------------------------------------------------------ *)

(* Two query threads race two add/release churn threads over one entry.
   The pin discipline must keep the count ≥ 1 throughout (each churner
   releases only what it added), never underflow, and leave exactly the
   original reference at the end. *)
let test_pin_release_hammer () =
  with_csv ~n:40 ~m:2 (fun csv ->
      let store = Store.create () in
      let d = Dataset.of_csv ~name:"hammer" csv in
      let l = Store.add store d in
      let key = l.Store.key in
      let bad = Atomic.make 0 in
      let iters = 150 in
      let query_thread () =
        for _ = 1 to iters do
          match Store.query store (query ~algo:Protocol.Cube ~r:2 key) with
          | Ok _ -> ()
          | Error _ -> Atomic.incr bad
        done
      in
      let churn_thread () =
        for _ = 1 to iters do
          ignore (Store.add store d : Store.loaded);
          Thread.yield ();
          match Store.release store key with
          | Store.Released { remaining; _ } when remaining >= 0 -> ()
          | _ -> Atomic.incr bad
        done
      in
      let ths =
        [
          Thread.create query_thread ();
          Thread.create query_thread ();
          Thread.create churn_thread ();
          Thread.create churn_thread ();
        ]
      in
      List.iter Thread.join ths;
      Alcotest.(check int) "no underflow, no lost entry" 0 (Atomic.get bad);
      (match Store.release store key with
      | Store.Released { freed = true; remaining = 0; _ } -> ()
      | _ -> Alcotest.fail "final release must free cleanly");
      match Store.query store (query ~algo:Protocol.Cube ~r:2 key) with
      | Error `Unknown_dataset -> ()
      | _ -> Alcotest.fail "freed entry must be unknown")

(* ------------------------------------------------------------------ *)
(* Router end to end                                                  *)
(* ------------------------------------------------------------------ *)

let temp_socket tag =
  let path = Filename.temp_file ("rrms_" ^ tag) ".sock" in
  Sys.remove path;
  path

(* Real topology: two worker daemons on Unix sockets, a router fanning
   out over them.  The batch answers in order, amortizes the worker
   fan-out (one skyline merge for the whole batch), and every item is
   byte-identical to a single-process store. *)
let test_router_batch_e2e () =
  with_counters (fun () ->
      with_csv ~n:160 ~m:3 ~seed:17 (fun csv ->
          let sock_a = temp_socket "wa" and sock_b = temp_socket "wb" in
          let wa = Server.start (Store.create ()) ~socket:sock_a in
          let wb = Server.start (Store.create ()) ~socket:sock_b in
          let rt = Shard.Router.create ~workers:[ sock_a; sock_b ] () in
          Fun.protect
            ~finally:(fun () ->
              Shard.Router.close rt;
              Server.stop wa;
              Server.wait wa;
              Server.stop wb;
              Server.wait wb)
            (fun () ->
              let rpc, close = open_session (Shard.Router.handler rt) in
              Fun.protect ~finally:close (fun () ->
                  let load =
                    rpc
                      (Printf.sprintf
                         "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv)
                  in
                  Alcotest.(check bool) "router load ok" true
                    (contains load "\"ok\":true");
                  let m0 = counter Shard.Metrics.skyline_merges in
                  let batch =
                    rpc
                      (String.concat ""
                         [
                           "{\"req\":\"batch\",\"dataset\":\"d\",\"items\":[";
                           "{\"algo\":\"hd-rrms\",\"r\":3},";
                           "{\"algo\":\"hd-rrms\",\"r\":4},";
                           "{\"algo\":\"cube\",\"r\":3},";
                           "{\"algo\":\"hd-rrms\"}";
                           "]}";
                         ])
                  in
                  Alcotest.(check int)
                    "one worker fan-out amortized over the batch" 1
                    (counter Shard.Metrics.skyline_merges - m0);
                  let items = batch_items batch in
                  Alcotest.(check int) "four items answered" 4
                    (Array.length items);
                  Alcotest.(check string) "malformed item is per-item"
                    "bad_request" (item_code items.(3));
                  let base = Store.create () in
                  ignore (Store.load base ~name:"d" csv : Store.loaded);
                  let expect q' = fst (Test_serve.result_string base q') in
                  Alcotest.(check string) "item 0 = single-process bytes"
                    (expect (query ~algo:Protocol.Hd_rrms ~r:3 "d"))
                    (item_result items.(0));
                  Alcotest.(check string) "item 1 = single-process bytes"
                    (expect (query ~algo:Protocol.Hd_rrms ~r:4 "d"))
                    (item_result items.(1));
                  Alcotest.(check string) "item 2 = single-process bytes"
                    (expect (query ~algo:Protocol.Cube ~r:3 "d"))
                    (item_result items.(2));
                  (* single query through the router: now a cache hit,
                     still the same bytes *)
                  let q1 =
                    rpc
                      "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3,\"gamma\":4}"
                  in
                  Alcotest.(check bool) "warm router query hits" true
                    (contains q1 "\"cached\":true");
                  (match Test_serve.member_string "result" q1 with
                  | Some r ->
                      Alcotest.(check string) "warm router bytes"
                        (expect (query ~algo:Protocol.Hd_rrms ~r:3 "d"))
                        r
                  | None -> Alcotest.fail "router query without result");
                  let st = rpc "{\"req\":\"stats\"}" in
                  Alcotest.(check bool) "stats lists the workers" true
                    (contains st "\"router\"");
                  Alcotest.(check bool) "workers are connected" true
                    (contains st "\"connected\":true")));
          Alcotest.(check bool) "worker sockets removed" false
            (Sys.file_exists sock_a || Sys.file_exists sock_b)))

(* A stub worker that accepts, reads one line and slams the connection
   shut — the crash-mid-request shape.  Returns its kill switch. *)
let crash_stub path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  let stop = ref false in
  let th =
    Thread.create
      (fun () ->
        try
          while true do
            let c, _ = Unix.accept fd in
            if !stop then begin
              Unix.close c;
              raise Exit
            end;
            let ic = Unix.in_channel_of_descr c in
            (try ignore (input_line ic : string)
             with End_of_file | Sys_error _ -> ());
            Unix.close c
          done
        with _ -> ())
      ()
  in
  fun () ->
    stop := true;
    (try
       let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect s (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
       Unix.close s
     with Unix.Unix_error _ -> ());
    Thread.join th;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if Sys.file_exists path then Sys.remove path

(* One healthy worker, one that crashes mid-request: the fan-out leg
   fails (after its one redial), the query answers shard_failure, the
   session stays alive, and local algorithms are unaffected. *)
let test_router_worker_crash () =
  with_counters (fun () ->
      with_csv ~n:120 ~m:3 ~seed:23 (fun csv ->
          let sock_good = temp_socket "good" and sock_bad = temp_socket "bad" in
          let wg = Server.start (Store.create ()) ~socket:sock_good in
          let kill = crash_stub sock_bad in
          let rt = Shard.Router.create ~workers:[ sock_good; sock_bad ] () in
          Fun.protect
            ~finally:(fun () ->
              Shard.Router.close rt;
              kill ();
              Server.stop wg;
              Server.wait wg)
            (fun () ->
              let rpc, close = open_session (Shard.Router.handler rt) in
              Fun.protect ~finally:close (fun () ->
                  let load =
                    rpc
                      (Printf.sprintf
                         "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv)
                  in
                  Alcotest.(check bool) "load ok" true
                    (contains load "\"ok\":true");
                  let q1 =
                    rpc
                      "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3}"
                  in
                  Alcotest.(check bool) "crashed leg answers shard_failure"
                    true
                    (contains q1 "\"code\":\"shard_failure\"");
                  Alcotest.(check bool) "failure counted" true
                    (counter Shard.Metrics.worker_failures > 0);
                  (* the session is not hung: per-item errors in a batch,
                     local algorithms and ping all still answer *)
                  let batch =
                    rpc
                      "{\"req\":\"batch\",\"dataset\":\"d\",\"items\":[{\"algo\":\"hd-rrms\",\"r\":3},{\"algo\":\"cube\",\"r\":3}]}"
                  in
                  let items = batch_items batch in
                  Alcotest.(check string) "fanned item fails per-item"
                    "shard_failure" (item_code items.(0));
                  Alcotest.(check string) "local item still answers" "ok"
                    (item_code items.(1));
                  let ping = rpc "{\"req\":\"ping\"}" in
                  Alcotest.(check bool) "session survives the crash" true
                    (contains ping "\"ok\":true")))))

(* A scripted stub worker: replies per line via [on_line]. *)
let scripted_stub path on_line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  let stop = ref false in
  let th =
    Thread.create
      (fun () ->
        try
          while true do
            let c, _ = Unix.accept fd in
            if !stop then begin
              Unix.close c;
              raise Exit
            end;
            let ic = Unix.in_channel_of_descr c in
            let oc = Unix.out_channel_of_descr c in
            (try
               let rec pump () =
                 let line = input_line ic in
                 output_string oc (on_line line);
                 output_char oc '\n';
                 flush oc;
                 pump ()
               in
               pump ()
             with End_of_file | Sys_error _ -> ());
            (try Unix.close c with Unix.Unix_error _ -> ())
          done
        with _ -> ())
      ()
  in
  fun () ->
    stop := true;
    (try
       let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect s (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
       Unix.close s
     with Unix.Unix_error _ -> ());
    Thread.join th;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if Sys.file_exists path then Sys.remove path

(* The router must forward the *remaining* deadline to the workers, and
   a worker-side expiry must come back as deadline_exceeded (not
   shard_failure).  The stub records the forwarded skyline request so
   the timeout can be asserted directly. *)
let test_router_deadline_propagation () =
  with_csv ~n:80 ~m:3 ~seed:29 (fun csv ->
      let sock = temp_socket "ddl" in
      let recorded = ref [] in
      let rec_lock = Mutex.create () in
      let on_line line =
        if contains line "\"req\":\"load\"" then
          "{\"id\":\"router-load-0\",\"ok\":true,\"result\":{\"key\":\"w0slice\"}}"
        else begin
          Mutex.lock rec_lock;
          recorded := line :: !recorded;
          Mutex.unlock rec_lock;
          "{\"id\":\"router-skyline\",\"ok\":false,\"error\":{\"code\":\"deadline_exceeded\",\"message\":\"stub: worker deadline expired\"}}"
        end
      in
      let kill = scripted_stub sock on_line in
      let rt = Shard.Router.create ~workers:[ sock ] () in
      Fun.protect
        ~finally:(fun () ->
          Shard.Router.close rt;
          kill ())
        (fun () ->
          let rpc, close = open_session (Shard.Router.handler rt) in
          Fun.protect ~finally:close (fun () ->
              let load =
                rpc
                  (Printf.sprintf
                     "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv)
              in
              Alcotest.(check bool) "load ok" true
                (contains load "\"ok\":true");
              let q =
                rpc
                  "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3,\"timeout\":7.5}"
              in
              Alcotest.(check bool) "worker expiry propagates as deadline"
                true
                (contains q "\"code\":\"deadline_exceeded\"");
              let lines = Mutex.lock rec_lock;
                          let l = !recorded in
                          Mutex.unlock rec_lock;
                          l
              in
              Alcotest.(check int) "exactly one fan-out request" 1
                (List.length lines);
              let fanned = parse_json (List.hd lines) in
              (match Json.member "req" fanned with
              | Some (Json.Str "skyline") -> ()
              | _ -> Alcotest.fail "forwarded request must be a skyline");
              (match Json.member "dataset" fanned with
              | Some (Json.Str "w0slice") -> ()
              | _ -> Alcotest.fail "fan-out must target the worker's key");
              match Json.member "timeout" fanned with
              | Some (Json.Num tm) ->
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "forwarded deadline %.3f is the positive remainder of \
                        7.5" tm)
                    true
                    (tm > 0. && tm <= 7.5)
              | _ -> Alcotest.fail "forwarded request must carry a timeout")))

(* ------------------------------------------------------------------ *)
(* Cluster tracing                                                    *)
(* ------------------------------------------------------------------ *)

let with_full f =
  let prev = Obs.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_level prev)
    (fun () ->
      Obs.set_level Obs.Full;
      Obs.reset ();
      f ())

(* Spawn a real worker daemon (a separate OS process — the only honest
   way to test cross-process trace merging) and block until its socket
   accepts.  Returns the kill-and-reap closure. *)
let spawn_worker_process sock =
  let null_r = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_w = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process Test_serve.serve_exe
      [| Test_serve.serve_exe; "--socket"; sock |]
      null_r null_w null_w
  in
  Unix.close null_r;
  Unix.close null_w;
  let rec wait_ready tries =
    if tries = 0 then Alcotest.fail ("worker never came up on " ^ sock)
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> Unix.close fd
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.05;
          wait_ready (tries - 1)
  in
  wait_ready 200;
  fun () ->
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
     with Unix.Unix_error _ -> ());
    if Sys.file_exists sock then Sys.remove sock

(* The acceptance scenario: a router over two real worker processes at
   Full tracing.  One routed query must leave one merged trace in the
   router's buffer — a single trace id, exactly one root, every span
   (router admission, both workers' skyline solves, certified merge)
   reachable from the root over parent edges — while the answer stays
   byte-identical to a single-process store, with and without the
   explain cost echo. *)
let test_router_merged_trace () =
  with_csv ~n:140 ~m:3 ~seed:37 (fun csv ->
      let sock_a = temp_socket "tra" and sock_b = temp_socket "trb" in
      let kill_a = spawn_worker_process sock_a in
      let kill_b = spawn_worker_process sock_b in
      with_full (fun () ->
          let rt = Shard.Router.create ~workers:[ sock_a; sock_b ] () in
          Fun.protect
            ~finally:(fun () ->
              Shard.Router.close rt;
              kill_a ();
              kill_b ())
            (fun () ->
              let rpc, close = open_session (Shard.Router.handler rt) in
              Fun.protect ~finally:close (fun () ->
                  let load =
                    rpc
                      (Printf.sprintf
                         "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv)
                  in
                  Alcotest.(check bool) "router load ok" true
                    (contains load "\"ok\":true");
                  let q1 =
                    rpc
                      "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3,\"gamma\":4}"
                  in
                  Alcotest.(check bool) "routed query ok" true
                    (contains q1 "\"ok\":true");
                  (* --- the merged trace --- *)
                  let traced =
                    List.filter
                      (fun (e : Obs.Trace.event) -> e.trace_id <> "")
                      (Obs.Trace.events ())
                  in
                  Alcotest.(check bool) "traced spans recorded" true
                    (List.length traced >= 4);
                  let tid = (List.hd traced).Obs.Trace.trace_id in
                  List.iter
                    (fun (e : Obs.Trace.event) ->
                      Alcotest.(check string) "single trace id" tid e.trace_id)
                    traced;
                  let roots =
                    List.filter
                      (fun (e : Obs.Trace.event) -> e.parent_id = "")
                      traced
                  in
                  Alcotest.(check int) "exactly one root" 1 (List.length roots);
                  (* Globally unique ids: two workers mint under the same
                     fan-out parent, so this holds only because the router
                     namespaces ingested dumps per shard. *)
                  let ids =
                    List.sort compare
                      (List.map
                         (fun (e : Obs.Trace.event) -> e.span_id)
                         traced)
                  in
                  Alcotest.(check int) "merged span ids unique"
                    (List.length ids)
                    (List.length (List.sort_uniq compare ids));
                  let root = List.hd roots in
                  let find id =
                    List.find_opt
                      (fun (e : Obs.Trace.event) -> e.span_id = id)
                      traced
                  in
                  List.iter
                    (fun (e : Obs.Trace.event) ->
                      let rec climb (e : Obs.Trace.event) hops =
                        Alcotest.(check bool) "no parent cycle" true (hops < 20);
                        if e.span_id = root.Obs.Trace.span_id then ()
                        else
                          match find e.parent_id with
                          | Some p -> climb p (hops + 1)
                          | None ->
                              Alcotest.failf
                                "span %s (%s) dangling parent %s" e.span_id
                                e.name e.parent_id
                      in
                      climb e 0)
                    traced;
                  let has_span name shard =
                    List.exists
                      (fun (e : Obs.Trace.event) ->
                        e.name = name
                        &&
                        match shard with
                        | None -> true
                        | Some s ->
                            List.assoc_opt "shard" e.attrs
                            = Some (string_of_int s))
                      traced
                  in
                  Alcotest.(check bool) "router admission span" true
                    (has_span "serve.query" None);
                  Alcotest.(check bool) "router fan-out span" true
                    (has_span "router.fanout" None);
                  Alcotest.(check bool) "certified merge span" true
                    (has_span "router.certified_merge" None);
                  Alcotest.(check bool) "worker 0 solve ingested" true
                    (has_span "serve.skyline" (Some 0));
                  Alcotest.(check bool) "worker 1 solve ingested" true
                    (has_span "serve.skyline" (Some 1));
                  (* --- bytes: traced, explained, and reference --- *)
                  let base = Store.create () in
                  ignore (Store.load base ~name:"d" csv : Store.loaded);
                  let expect =
                    fst
                      (Test_serve.result_string base
                         (query ~algo:Protocol.Hd_rrms ~r:3 ~gamma:4 "d"))
                  in
                  (match Test_serve.member_string "result" q1 with
                  | Some r ->
                      Alcotest.(check string)
                        "traced routed answer = single-process bytes" expect r
                  | None -> Alcotest.fail "routed query without result");
                  let q2 =
                    rpc
                      "{\"req\":\"query\",\"dataset\":\"d\",\"algo\":\"hd-rrms\",\"r\":3,\"gamma\":4,\"explain\":true}"
                  in
                  (match Test_serve.member_string "result" q2 with
                  | Some r ->
                      Alcotest.(check string)
                        "explain leaves result bytes unchanged" expect r
                  | None -> Alcotest.fail "explain query without result");
                  Alcotest.(check bool) "cost echo present under explain" true
                    (contains q2 "\"cost\":");
                  Alcotest.(check bool) "cost names the merge path" true
                    (contains q2 "\"merge\":\"certified\"");
                  Alcotest.(check bool)
                    "plain response carries no cost member" false
                    (contains q1 "\"cost\":");
                  (* --- cluster-aggregated stats --- *)
                  let st = rpc "{\"req\":\"stats\"}" in
                  Alcotest.(check bool) "stats has the cluster view" true
                    (contains st "\"cluster\":");
                  Alcotest.(check bool) "cluster counts processes" true
                    (contains st "\"processes\":3");
                  Alcotest.(check bool) "cluster merges latency rows" true
                    (contains st "\"shard\":\"all\"");
                  Alcotest.(check bool) "cluster reports skew" true
                    (contains st "\"straggler_gap_seconds\":")))))

(* Answers are bit-identical with tracing off (Disabled) and fully on
   (Full + a traced, span-capturing context) at 1 / 2 / 4 shards. *)
let test_trace_onoff_bit_identity () =
  with_csv ~n:180 ~m:3 ~seed:41 (fun csv ->
      List.iter
        (fun shards ->
          let solve level traced =
            let prev = Obs.level () in
            Fun.protect
              ~finally:(fun () ->
                Obs.reset ();
                Obs.set_level prev)
              (fun () ->
                Obs.set_level level;
                Obs.reset ();
                let sh = Shard.create ~shards () in
                let l = Shard.load sh csv in
                let q =
                  query ~algo:Protocol.Hd_rrms ~r:3 ~gamma:4 l.Store.key
                in
                let run () =
                  match Shard.query sh q with
                  | Ok { Store.result; _ } -> Json.to_string result
                  | Error _ -> Alcotest.fail "shard query failed"
                in
                if traced then
                  let ctx =
                    Obs.Ctx.create ~request_id:"rq" ~session_id:"s"
                      ~capture_spans:true ~trace_id:"t-bits" ()
                  in
                  Obs.Ctx.with_ctx ctx run
                else run ())
          in
          let off = solve Obs.Disabled false in
          let on = solve Obs.Full true in
          Alcotest.(check string)
            (Printf.sprintf "bytes identical traced vs untraced, %d shards"
               shards)
            off on)
        [ 1; 2; 4 ])

(* Trace-id propagation: a client envelope rides every fan-out leg of a
   batch request (stub worker records the forwarded lines), and a
   mutation binds the envelope's trace id to its [serve.mutate] span. *)
let test_trace_propagation_batch_mutation () =
  with_csv ~n:90 ~m:3 ~seed:43 (fun csv ->
      (* batch → forwarded skyline requests carry the client's id.
         Counters level (the service default): the parent span id in
         the envelope is minted by the traced context, no global Full
         buffer needed. *)
      with_counters (fun () ->
      let sock = temp_socket "tprop" in
      let recorded = ref [] in
      let rec_lock = Mutex.create () in
      let on_line line =
        if contains line "\"req\":\"load\"" then
          "{\"id\":\"router-load-0\",\"ok\":true,\"result\":{\"key\":\"w0slice\"}}"
        else begin
          Mutex.lock rec_lock;
          recorded := line :: !recorded;
          Mutex.unlock rec_lock;
          "{\"id\":\"router-skyline\",\"ok\":false,\"error\":{\"code\":\"deadline_exceeded\",\"message\":\"stub\"}}"
        end
      in
      let kill = scripted_stub sock on_line in
      let rt = Shard.Router.create ~workers:[ sock ] () in
      Fun.protect
        ~finally:(fun () ->
          Shard.Router.close rt;
          kill ())
        (fun () ->
          let rpc, close = open_session (Shard.Router.handler rt) in
          Fun.protect ~finally:close (fun () ->
              let load =
                rpc
                  (Printf.sprintf
                     "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv)
              in
              Alcotest.(check bool) "load ok" true
                (contains load "\"ok\":true");
              ignore
                (rpc
                   "{\"req\":\"batch\",\"dataset\":\"d\",\"trace\":{\"id\":\"t-client\",\"request_id\":\"creq\"},\"items\":[{\"algo\":\"hd-rrms\",\"r\":3},{\"algo\":\"cube\",\"r\":3}]}"
                  : string);
              let lines =
                Mutex.lock rec_lock;
                let l = !recorded in
                Mutex.unlock rec_lock;
                l
              in
              Alcotest.(check int) "one fan-out for the batch" 1
                (List.length lines);
              let fanned = parse_json (List.hd lines) in
              match Json.member "trace" fanned with
              | Some t -> (
                  (match Json.member "id" t with
                  | Some (Json.Str "t-client") -> ()
                  | _ -> Alcotest.fail "client trace id not forwarded");
                  match Json.member "parent" t with
                  | Some (Json.Str p) ->
                      Alcotest.(check bool)
                        "fan-out carries a parent span id" true (p <> "")
                  | _ -> Alcotest.fail "forwarded envelope without parent")
              | None -> Alcotest.fail "fan-out leg lost the trace envelope")));
      (* mutation → the serve.mutate span carries the envelope's id *)
      with_full (fun () ->
          let store = Store.create () in
          let rpc, close = open_session (Server.store_handler store) in
          Fun.protect ~finally:close (fun () ->
              let load =
                rpc
                  (Printf.sprintf
                     "{\"req\":\"load\",\"path\":%S,\"name\":\"d\"}" csv)
              in
              Alcotest.(check bool) "load ok" true
                (contains load "\"ok\":true");
              let m =
                rpc
                  "{\"req\":\"insert\",\"dataset\":\"d\",\"values\":[0.5,0.5,0.5],\"trace\":{\"id\":\"t-mut\"}}"
              in
              Alcotest.(check bool) "mutation ok" true
                (contains m "\"ok\":true");
              let spans =
                List.filter
                  (fun (e : Obs.Trace.event) -> e.name = "serve.mutate")
                  (Obs.Trace.events ())
              in
              Alcotest.(check bool) "mutate span recorded" true (spans <> []);
              List.iter
                (fun (e : Obs.Trace.event) ->
                  Alcotest.(check string)
                    "mutation routed under the client's trace id" "t-mut"
                    e.trace_id;
                  Alcotest.(check bool) "mutate span has an id" true
                    (e.span_id <> ""))
                spans)))

(* The binary refuses inconsistent router flags. *)
let test_router_flag_validation () =
  let dev_null = " >/dev/null 2>&1" in
  Alcotest.(check bool) "--router requires --shard-socket" true
    (Sys.command (Test_serve.serve_exe ^ " --router --stdio" ^ dev_null) <> 0);
  Alcotest.(check bool) "--shard-socket requires --router" true
    (Sys.command
       (Test_serve.serve_exe ^ " --shard-socket /tmp/rrms_none.sock --stdio"
      ^ dev_null)
    <> 0)

let suite =
  [
    Alcotest.test_case "partition round-robin" `Quick test_partition_roundrobin;
    Alcotest.test_case "partition agrees with Store.load ?shard" `Quick
      test_store_slice_agreement;
    Alcotest.test_case "skyline decomposability" `Quick
      test_skyline_decomposability;
    Alcotest.test_case "certified merge bit-identity (all algos)" `Quick
      test_certified_bit_identity;
    Alcotest.test_case "certified merge bit-identity (HD, m=4)" `Quick
      test_certified_bit_identity_hd;
    Alcotest.test_case "shard metrics and release" `Quick
      test_shard_metrics_and_release;
    Alcotest.test_case "union merge bound dominates true regret" `Quick
      test_union_bound;
    Alcotest.test_case "batch protocol" `Quick test_batch_protocol;
    Alcotest.test_case "pin/release hammer" `Quick test_pin_release_hammer;
    Alcotest.test_case "router batch end to end" `Quick test_router_batch_e2e;
    Alcotest.test_case "router worker crash" `Quick test_router_worker_crash;
    Alcotest.test_case "router deadline propagation" `Quick
      test_router_deadline_propagation;
    Alcotest.test_case "router flag validation" `Quick
      test_router_flag_validation;
    Alcotest.test_case "router merged trace (real workers)" `Quick
      test_router_merged_trace;
    Alcotest.test_case "tracing on/off bit-identity (1/2/4 shards)" `Quick
      test_trace_onoff_bit_identity;
    Alcotest.test_case "trace propagation: batch and mutation" `Quick
      test_trace_propagation_batch_mutation;
  ]
