(* Tests for the two-phase simplex solver. *)

open Rrms_lp

let feq ?(eps = 1e-6) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

let get_optimal = function
  | Simplex.Optimal { objective; solution } -> (objective, solution)
  | Simplex.Infeasible -> Alcotest.fail "unexpected Infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected Unbounded"
  | Simplex.Degenerate _ -> Alcotest.fail "unexpected Degenerate"

let test_basic_le () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 — classic example,
     optimum 36 at (2, 6). *)
  let status =
    Simplex.maximize ~c:[| 3.; 5. |]
      [
        Simplex.constraint_ [| 1.; 0. |] Le 4.;
        Simplex.constraint_ [| 0.; 2. |] Le 12.;
        Simplex.constraint_ [| 3.; 2. |] Le 18.;
      ]
  in
  let obj, x = get_optimal status in
  feq "objective" 36. obj;
  feq "x" 2. x.(0);
  feq "y" 6. x.(1)

let test_equality_constraint () =
  (* max x + y st x + y = 5, x <= 3 → obj 5. *)
  let status =
    Simplex.maximize ~c:[| 1.; 1. |]
      [
        Simplex.constraint_ [| 1.; 1. |] Eq 5.;
        Simplex.constraint_ [| 1.; 0. |] Le 3.;
      ]
  in
  let obj, x = get_optimal status in
  feq "objective" 5. obj;
  feq "sum" 5. (x.(0) +. x.(1))

let test_ge_constraint () =
  (* min x + y st x + 2y >= 4, 3x + y >= 6 → optimum at intersection
     (8/5, 6/5), obj 14/5. *)
  let status =
    Simplex.minimize ~c:[| 1.; 1. |]
      [
        Simplex.constraint_ [| 1.; 2. |] Ge 4.;
        Simplex.constraint_ [| 3.; 1. |] Ge 6.;
      ]
  in
  let obj, x = get_optimal status in
  feq "objective" 2.8 obj;
  feq "x" 1.6 x.(0);
  feq "y" 1.2 x.(1)

let test_infeasible () =
  let status =
    Simplex.maximize ~c:[| 1. |]
      [
        Simplex.constraint_ [| 1. |] Ge 5.;
        Simplex.constraint_ [| 1. |] Le 3.;
      ]
  in
  Alcotest.(check bool) "infeasible detected" true (status = Simplex.Infeasible)

let test_unbounded () =
  let status =
    Simplex.maximize ~c:[| 1.; 0. |] [ Simplex.constraint_ [| 0.; 1. |] Le 1. ]
  in
  Alcotest.(check bool) "unbounded detected" true (status = Simplex.Unbounded)

let test_negative_rhs () =
  (* max -x st -x >= -3 (i.e. x <= 3) and x >= 1 → obj -1. *)
  let status =
    Simplex.maximize ~c:[| -1. |]
      [
        Simplex.constraint_ [| -1. |] Ge (-3.);
        Simplex.constraint_ [| 1. |] Ge 1.;
      ]
  in
  let obj, x = get_optimal status in
  feq "objective" (-1.) obj;
  feq "x" 1. x.(0)

let test_degenerate () =
  (* A degenerate vertex: three constraints through one point. Bland's
     rule must terminate. *)
  let status =
    Simplex.maximize ~c:[| 1.; 1. |]
      [
        Simplex.constraint_ [| 1.; 0. |] Le 1.;
        Simplex.constraint_ [| 0.; 1. |] Le 1.;
        Simplex.constraint_ [| 1.; 1. |] Le 2.;
      ]
  in
  let obj, _ = get_optimal status in
  feq "objective" 2. obj

let test_zero_objective_feasibility () =
  Alcotest.(check bool)
    "feasible system" true
    (Simplex.feasible 2
       [
         Simplex.constraint_ [| 1.; 1. |] Eq 1.;
         Simplex.constraint_ [| 1.; 0. |] Le 0.7;
       ]);
  Alcotest.(check bool)
    "infeasible system" false
    (Simplex.feasible 2
       [
         Simplex.constraint_ [| 1.; 1. |] Eq 1.;
         Simplex.constraint_ [| 1.; 0. |] Ge 2.;
       ])

let test_redundant_equality () =
  (* Redundant constraints must not break phase-1 artificial purge. *)
  let status =
    Simplex.maximize ~c:[| 1.; 2. |]
      [
        Simplex.constraint_ [| 1.; 1. |] Eq 4.;
        Simplex.constraint_ [| 2.; 2. |] Eq 8.;
        Simplex.constraint_ [| 1.; 0. |] Le 3.;
      ]
  in
  let obj, x = get_optimal status in
  feq "objective" 8. obj;
  feq "x" 0. x.(0);
  feq "y" 4. x.(1)

let test_dimension_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Simplex: constraint dimension mismatch") (fun () ->
      ignore
        (Simplex.maximize ~c:[| 1.; 1. |] [ Simplex.constraint_ [| 1. |] Le 1. ]))

let test_no_constraints_bounded () =
  (* max -x - y with no constraints → optimum 0 at origin. *)
  let status = Simplex.maximize ~c:[| -1.; -1. |] [] in
  let obj, _ = get_optimal status in
  feq "objective" 0. obj

(* Brute-force cross-check on random 2-variable LPs: enumerate all
   candidate vertices (constraint intersections and axis intercepts) and
   compare the best feasible vertex value to the simplex optimum. *)
let brute_force_2var c rows =
  let feasible_point (x, y) =
    x >= -1e-9 && y >= -1e-9
    && List.for_all
         (fun (a, rel, b) ->
           let v = (a.(0) *. x) +. (a.(1) *. y) in
           match rel with
           | Simplex.Le -> v <= b +. 1e-7
           | Simplex.Ge -> v >= b -. 1e-7
           | Simplex.Eq -> Float.abs (v -. b) <= 1e-7)
         rows
  in
  (* Lines: the constraints plus the two axes. *)
  let lines =
    ([| 1.; 0. |], 0.) :: ([| 0.; 1. |], 0.)
    :: List.map (fun (a, _, b) -> (a, b)) rows
  in
  let candidates = ref [] in
  let rec pairs = function
    | [] -> ()
    | (a1, b1) :: rest ->
        List.iter
          (fun (a2, b2) ->
            let det = (a1.(0) *. a2.(1)) -. (a1.(1) *. a2.(0)) in
            if Float.abs det > 1e-9 then begin
              let x = ((b1 *. a2.(1)) -. (b2 *. a1.(1))) /. det in
              let y = ((a1.(0) *. b2) -. (a2.(0) *. b1)) /. det in
              candidates := (x, y) :: !candidates
            end)
          rest;
        pairs rest
  in
  pairs lines;
  let best = ref None in
  List.iter
    (fun (x, y) ->
      if feasible_point (x, y) then begin
        let v = (c.(0) *. x) +. (c.(1) *. y) in
        match !best with
        | Some b when b >= v -> ()
        | _ -> best := Some v
      end)
    !candidates;
  !best

let test_random_lps_vs_brute_force () =
  let rng = Rrms_rng.Rng.create 41 in
  let mismatches = ref 0 in
  for _ = 1 to 300 do
    let c =
      [| Rrms_rng.Rng.uniform rng (-5.) 5.; Rrms_rng.Rng.uniform rng (-5.) 5. |]
    in
    let nrows = 1 + Rrms_rng.Rng.int rng 4 in
    let rows =
      List.init nrows (fun _ ->
          let a =
            [|
              Rrms_rng.Rng.uniform rng (-3.) 3.;
              Rrms_rng.Rng.uniform rng (-3.) 3.;
            |]
          in
          let rel = if Rrms_rng.Rng.bool rng then Simplex.Le else Simplex.Ge in
          (a, rel, Rrms_rng.Rng.uniform rng (-4.) 8.))
    in
    let constraints =
      List.map (fun (a, rel, b) -> Simplex.constraint_ a rel b) rows
    in
    match Simplex.maximize ~c constraints with
    | Simplex.Optimal { objective; solution } -> (
        (* Solution must satisfy every constraint. *)
        Alcotest.(check bool) "x >= 0" true (solution.(0) >= -1e-7);
        Alcotest.(check bool) "y >= 0" true (solution.(1) >= -1e-7);
        List.iter
          (fun (a, rel, b) ->
            let v = (a.(0) *. solution.(0)) +. (a.(1) *. solution.(1)) in
            let ok =
              match rel with
              | Simplex.Le -> v <= b +. 1e-6
              | Simplex.Ge -> v >= b -. 1e-6
              | Simplex.Eq -> Float.abs (v -. b) <= 1e-6
            in
            Alcotest.(check bool) "solution satisfies constraints" true ok)
          rows;
        match brute_force_2var c rows with
        | Some best -> feq ~eps:1e-4 "matches brute force" best objective
        | None -> incr mismatches)
    | Simplex.Infeasible ->
        (* Brute force must also find nothing. *)
        if brute_force_2var c rows <> None then incr mismatches
    | Simplex.Unbounded -> ()
    (* Unboundedness is hard to confirm by vertex enumeration; the
       bounded cases above give the coverage we need. *)
    | Simplex.Degenerate _ -> ()
    (* The pivot cap surfacing instead of an answer is acceptable for a
       random degenerate instance; correctness of the cap is covered in
       test_guard.ml. *)
  done;
  Alcotest.(check int) "no disagreements with brute force" 0 !mismatches

let suite =
  [
    Alcotest.test_case "basic le" `Quick test_basic_le;
    Alcotest.test_case "equality" `Quick test_equality_constraint;
    Alcotest.test_case "ge / minimize" `Quick test_ge_constraint;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
    Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
    Alcotest.test_case "feasibility" `Quick test_zero_objective_feasibility;
    Alcotest.test_case "redundant equality" `Quick test_redundant_equality;
    Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
    Alcotest.test_case "no constraints" `Quick test_no_constraints_bounded;
    Alcotest.test_case "random vs brute force" `Quick
      test_random_lps_vs_brute_force;
  ]
