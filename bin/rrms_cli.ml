(* rrms: command-line front end for the regret-ratio minimizing set
   library.

   Subcommands:
     generate   synthesize a dataset (synthetic families or the
                simulated real-world tables) and write it as CSV
     skyline    compute the skyline of a CSV dataset
     hull       compute the maxima hull (2D) or LP hull size (any m)
     solve      run one of the RRMS algorithms and report the selection
     eval       evaluate the exact regret ratio of a given tuple subset *)

open Cmdliner
module Guard = Rrms_guard.Guard

(* Degraded-but-certified results exit 3; structured errors exit with
   their sysexits-style class code (65/69/70/75 — see
   docs/ROBUSTNESS.md).  Both are distinct from cmdliner's 124 usage
   errors, so scripts can tell "worse answer" from "no answer". *)
let exit_degraded = 3

let guard_error e =
  Printf.eprintf "rrms: error: %s\n%!" (Guard.Error.to_string e);
  exit (Guard.Error.exit_code e)

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Info)

let verbose_arg =
  let doc = "Enable verbose logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

(* Parallelism: the RRMS_DOMAINS environment variable sets the default
   worker-domain count for every parallel kernel (skyline, regret
   matrix, MRST probes); --domains overrides it per invocation.  All
   kernels return bit-identical results for every domain count. *)
let domains_arg =
  let doc =
    "Worker domains for the parallel kernels (default: \
     $(b,RRMS_DOMAINS) or 1 = serial)."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D" ~doc)

let setup_domains = function
  | Some d when d >= 1 -> Rrms_parallel.Pool.set_default_size d
  | Some _ | None -> ()

(* Observability: --metrics prints a Prometheus-style report to stderr
   at exit, --trace FILE writes the JSON-lines span trace.  Both leave
   stdout byte-identical to an uninstrumented run, so output diffs
   across traced/untraced invocations stay empty (CI relies on this). *)
module Obs = Rrms_obs.Obs

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print a Prometheus-style metrics report to stderr at exit \
           (solver output on stdout is unchanged).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans and write a JSON-lines trace to $(docv) at exit \
           (implies full observability).")

let setup_obs metrics trace =
  (match trace with
  | Some path ->
      Obs.set_level Obs.Full;
      at_exit (fun () -> Obs.write_trace path)
  | None -> ());
  if metrics then begin
    if Obs.level () = Obs.Disabled then Obs.set_level Obs.Counters;
    at_exit (fun () -> prerr_string (Obs.prometheus ()))
  end

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate_cmd =
  let kind_arg =
    let doc =
      "Dataset family: correlated | independent | anticorrelated | nba | \
       dot | airline | disk | skyline-only."
    in
    Arg.(value & opt string "independent" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let n_arg =
    Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Number of tuples.")
  in
  let m_arg =
    Arg.(
      value & opt int 4
      & info [ "m" ] ~docv:"M" ~doc:"Number of attributes (synthetic families).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  let run verbose kind n m seed out =
    setup_logs verbose;
    let rng = Rrms_rng.Rng.create seed in
    let dataset =
      match kind with
      | "correlated" -> Ok (Rrms_dataset.Synthetic.correlated rng ~n ~m)
      | "independent" -> Ok (Rrms_dataset.Synthetic.independent rng ~n ~m)
      | "anticorrelated" ->
          Ok (Rrms_dataset.Synthetic.anticorrelated rng ~n ~m)
      | "nba" -> Ok (Rrms_dataset.Realistic.nba rng ~n)
      | "dot" -> Ok (Rrms_dataset.Realistic.dot rng ~n)
      | "airline" -> Ok (Rrms_dataset.Realistic.airline rng ~n)
      | "disk" -> Ok (Rrms_dataset.Synthetic.in_quarter_disk rng ~n)
      | "skyline-only" ->
          Ok (Rrms_dataset.Synthetic.skyline_only_2d rng ~target:n)
      | other -> Error (Printf.sprintf "unknown dataset kind %S" other)
    in
    match dataset with
    | Error msg -> `Error (false, msg)
    | Ok d ->
        Rrms_dataset.Dataset.to_csv d out;
        Logs.info (fun f ->
            f "wrote %a to %s" Rrms_dataset.Dataset.pp d out);
        `Ok ()
  in
  let doc = "Generate a synthetic or simulated-real dataset as CSV." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      ret (const run $ verbose_arg $ kind_arg $ n_arg $ m_arg $ seed_arg $ out_arg))

(* ------------------------------------------------------------------ *)
(* shared dataset loading                                              *)

let input_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input CSV (header + rows).")

let normalize_arg =
  Arg.(
    value & flag
    & info [ "normalize" ] ~doc:"Scale every attribute to [0,1] first.")

let project_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "project" ] ~docv:"M"
        ~doc:
          "Keep only the first M attributes (the HD grid needs \
           (gamma+1)^(m-1) directions, so project wide tables first).")

let lenient_arg =
  Arg.(
    value & flag
    & info [ "lenient" ]
        ~doc:
          "Drop malformed / non-finite CSV rows with a warning instead of \
           rejecting the file (default: strict, exit 65 on the first bad \
           row).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget.  On expiry the solver returns its best \
           certified answer so far (exit 3, with a $(b,degraded:) report \
           line) rather than failing.")

let max_cells_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cells" ] ~docv:"N"
        ~doc:
          "Cap on regret-matrix cells s·(γ+1)^(m-1); the HD solvers \
           auto-shrink γ to fit (exit 3 when they had to; exit 69 when \
           even γ = 1 does not fit).")

let load ?project ?(lenient = false) path normalize =
  let mode =
    if lenient then Rrms_dataset.Dataset.Lenient else Rrms_dataset.Dataset.Strict
  in
  let d, warnings = Rrms_dataset.Dataset.of_csv_report ~mode path in
  List.iteri
    (fun i (w : Rrms_dataset.Dataset.load_warning) ->
      if i < 10 then
        Logs.warn (fun f ->
            f "%s:%d: dropped row (%s%s)" path w.line w.reason
              (match w.column with
              | Some c -> Printf.sprintf ", column %s" c
              | None -> "")))
    warnings;
  (match warnings with
  | [] -> ()
  | ws ->
      Logs.warn (fun f -> f "%s: dropped %d malformed row(s)" path
            (List.length ws)));
  let d =
    match project with
    | Some m when m < Rrms_dataset.Dataset.dim d ->
        Rrms_dataset.Dataset.project d (Array.init m Fun.id)
    | Some _ | None -> d
  in
  if normalize then Rrms_dataset.Dataset.normalize d else d

(* ------------------------------------------------------------------ *)
(* skyline                                                             *)

let skyline_cmd =
  let algo_arg =
    Arg.(
      value & opt string "sfs"
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Skyline algorithm: bnl | sfs | dnc | 2d.")
  in
  let print_arg =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the skyline row indices.")
  in
  let run verbose domains metrics trace input normalize algo print =
    setup_logs verbose;
    setup_domains domains;
    setup_obs metrics trace;
    let d = load input normalize in
    let rows = Rrms_dataset.Dataset.rows d in
    let result =
      match algo with
      | "bnl" -> Ok (Rrms_skyline.Skyline.bnl rows)
      | "sfs" -> Ok (Rrms_skyline.Skyline.sfs rows)
      | "dnc" -> Ok (Rrms_skyline.Skyline.divide_and_conquer rows)
      | "2d" -> Ok (Rrms_skyline.Skyline.two_d rows)
      | other -> Error (Printf.sprintf "unknown skyline algorithm %S" other)
    in
    match result with
    | Error msg -> `Error (false, msg)
    | Ok sky ->
        Printf.printf "n=%d skyline=%d\n" (Rrms_dataset.Dataset.size d)
          (Array.length sky);
        if print then
          Array.iter (fun i -> Printf.printf "%d\n" i) sky;
        `Ok ()
  in
  let doc = "Compute the skyline of a dataset." in
  Cmd.v
    (Cmd.info "skyline" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ domains_arg $ metrics_arg $ trace_arg
       $ input_arg $ normalize_arg $ algo_arg $ print_arg))

(* ------------------------------------------------------------------ *)
(* hull                                                                *)

let hull_cmd =
  let lp_arg =
    Arg.(
      value & flag
      & info [ "lp" ]
          ~doc:
            "Use the LP extreme-point test (any dimension; O(n) LPs) instead \
             of the 2D maxima hull.")
  in
  let run verbose metrics trace input normalize lp =
    setup_logs verbose;
    setup_obs metrics trace;
    let d = load input normalize in
    let rows = Rrms_dataset.Dataset.rows d in
    if lp then begin
      Printf.printf "n=%d hull=%d\n" (Array.length rows)
        (Rrms_core.Regret.convex_hull_size rows);
      `Ok ()
    end
    else if Rrms_dataset.Dataset.dim d <> 2 then
      `Error (false, "maxima hull requires m = 2 (use --lp for higher m)")
    else begin
      let hull = Rrms_geom.Hull2d.build rows in
      Printf.printf "n=%d maxima-hull=%d\n" (Array.length rows)
        (Rrms_geom.Hull2d.size hull);
      `Ok ()
    end
  in
  let doc = "Compute the convex (maxima) hull size of a dataset." in
  Cmd.v
    (Cmd.info "hull" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ metrics_arg $ trace_arg $ input_arg
       $ normalize_arg $ lp_arg))

(* ------------------------------------------------------------------ *)
(* solve                                                               *)

let exact_regret d selected =
  let rows = Rrms_dataset.Dataset.rows d in
  if Rrms_dataset.Dataset.dim d = 2 then
    Rrms_core.Regret.exact_2d ~selected rows
  else Rrms_core.Regret.exact_lp ~selected rows

let print_selection d selected =
  let attrs = Rrms_dataset.Dataset.attributes d in
  Printf.printf "# %s\n" (String.concat "," (Array.to_list attrs));
  Array.iter
    (fun i ->
      let cells =
        Array.to_list
          (Array.map (Printf.sprintf "%g") (Rrms_dataset.Dataset.row d i))
      in
      Printf.printf "%d,%s\n" i (String.concat "," cells))
    selected

let solve_cmd =
  let algo_arg =
    let doc =
      "Algorithm: 2d (published 2D-RRMS) | 2d-exact | sweepline | hd-rrms | \
       hd-greedy | greedy | cube."
    in
    Arg.(value & opt string "hd-rrms" & info [ "algo" ] ~docv:"ALGO" ~doc)
  in
  let r_arg =
    Arg.(value & opt int 5 & info [ "r" ] ~docv:"R" ~doc:"Output size budget.")
  in
  let gamma_arg =
    Arg.(
      value & opt int 4
      & info [ "gamma" ] ~docv:"G" ~doc:"Discretization parameter γ (HD).")
  in
  let budget_arg =
    Arg.(
      value & opt string "strict"
      & info [ "budget" ] ~docv:"B"
          ~doc:
            "hd-rrms cover acceptance: strict (≤ r output) | inflated \
             (§4.4.3: ε ≤ grid optimum, output may exceed r).")
  in
  let solver_arg =
    Arg.(
      value & opt string "greedy"
      & info [ "cover-solver" ] ~docv:"S"
          ~doc:"hd-rrms set-cover oracle: greedy | exact.")
  in
  let seed_arg =
    Arg.(
      value & opt string "first-attribute"
      & info [ "greedy-seed" ] ~docv:"SEED"
          ~doc:
            "greedy seeding: first-attribute (published) | best-singleton | \
             all-seeds.")
  in
  let run verbose domains metrics trace input normalize lenient project algo r
      gamma budget solver seed timeout max_cells =
    setup_logs verbose;
    setup_domains domains;
    setup_obs metrics trace;
    try
      let d = load ?project ~lenient input normalize in
      let rows = Rrms_dataset.Dataset.rows d in
      let guard =
        match (timeout, max_cells) with
        | None, None -> Guard.Budget.unlimited
        | _ -> Guard.Budget.create ?timeout ?max_cells ()
      in
      let budget =
        match budget with
        | "strict" -> Ok Rrms_core.Hd_rrms.Strict
        | "inflated" -> Ok Rrms_core.Hd_rrms.Inflated
        | other -> Error (Printf.sprintf "unknown budget %S" other)
      in
      let solver =
        match solver with
        | "greedy" -> Ok Rrms_core.Mrst.Greedy
        | "exact" -> Ok Rrms_core.Mrst.Exact
        | other -> Error (Printf.sprintf "unknown cover solver %S" other)
      in
      let seed =
        match seed with
        | "first-attribute" -> Ok Rrms_core.Greedy.First_attribute
        | "best-singleton" -> Ok Rrms_core.Greedy.Best_singleton
        | "all-seeds" -> Ok Rrms_core.Greedy.All_seeds
        | other -> Error (Printf.sprintf "unknown greedy seed %S" other)
      in
      let t0 = Unix.gettimeofday () in
      (* Each branch reports (selection, quality, certified bound).  The
         2D / cube algorithms predate the guard and always run exact. *)
      let result =
        try
          match (algo, budget, solver, seed) with
          | _, Error msg, _, _ | _, _, Error msg, _ | _, _, _, Error msg ->
              Error msg
          | "2d", _, _, _ ->
              Ok
                ( (Rrms_core.Rrms2d.solve rows ~r).Rrms_core.Rrms2d.selected,
                  Guard.Exact,
                  None )
          | "2d-exact", _, _, _ ->
              Ok
                ( (Rrms_core.Rrms2d.solve_exact rows ~r)
                    .Rrms_core.Rrms2d.selected,
                  Guard.Exact,
                  None )
          | "sweepline", _, _, _ ->
              Ok
                ( (Rrms_core.Sweepline.solve rows ~r)
                    .Rrms_core.Sweepline.selected,
                  Guard.Exact,
                  None )
          | "hd-rrms", Ok budget, Ok solver, _ ->
              let res =
                Rrms_core.Hd_rrms.solve ~gamma ~budget ~solver ~guard rows ~r
              in
              Ok
                ( res.Rrms_core.Hd_rrms.selected,
                  res.Rrms_core.Hd_rrms.quality,
                  Some res.Rrms_core.Hd_rrms.guarantee )
          | "hd-greedy", _, _, _ ->
              let res = Rrms_core.Hd_greedy.solve ~gamma ~guard rows ~r in
              let m = Rrms_dataset.Dataset.dim d in
              Ok
                ( res.Rrms_core.Hd_greedy.selected,
                  res.Rrms_core.Hd_greedy.quality,
                  Some
                    (Rrms_core.Discretize.theorem4_bound
                       ~gamma:res.Rrms_core.Hd_greedy.gamma_used ~m
                       ~eps:res.Rrms_core.Hd_greedy.discretized_regret) )
          | "greedy", _, _, Ok seed ->
              let res = Rrms_core.Greedy.solve ~seed ~guard rows ~r in
              Ok
                ( res.Rrms_core.Greedy.selected,
                  res.Rrms_core.Greedy.quality,
                  Some res.Rrms_core.Greedy.regret_lp )
          | "cube", _, _, _ ->
              Ok
                ( (Rrms_core.Cube.solve rows ~r).Rrms_core.Cube.selected,
                  Guard.Exact,
                  None )
          | other, _, _, _ ->
              Error (Printf.sprintf "unknown algorithm %S" other)
        with Invalid_argument msg -> Error msg
      in
      match result with
      | Error msg -> `Error (false, msg)
      | Ok (selected, quality, bound) ->
          let elapsed = Unix.gettimeofday () -. t0 in
          (* A deadline / probe stop means the budget is spent: re-running
             the exact LP evaluation could take arbitrarily longer than
             the user allowed, so report the solver's certified bound
             instead. *)
          let deadline_hit =
            match quality with
            | Guard.Exact -> false
            | Guard.Degraded reasons ->
                List.exists
                  (function
                    | Guard.Deadline _ | Guard.Probe_cap _ -> true
                    | Guard.Cell_cap _ | Guard.Numerical_skips _ -> false)
                  reasons
          in
          let regret_field =
            match (deadline_hit, bound) with
            | true, Some b -> Printf.sprintf "regret_bound=%.6f" b
            | true, None -> "regret_bound=nan"
            | false, _ ->
                Printf.sprintf "regret=%.6f" (exact_regret d selected)
          in
          Printf.printf "algo=%s r=%d selected=%d %s time=%.3fs\n" algo r
            (Array.length selected) regret_field elapsed;
          if not (Guard.is_exact quality) then
            Printf.printf "degraded: %s\n" (Guard.describe quality);
          print_selection d selected;
          if Guard.is_exact quality then `Ok () else exit exit_degraded
    with Guard.Error.Guard_error e -> guard_error e
  in
  let doc = "Find a regret-ratio minimizing set." in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ domains_arg $ metrics_arg $ trace_arg
       $ input_arg $ normalize_arg $ lenient_arg $ project_arg $ algo_arg
       $ r_arg $ gamma_arg $ budget_arg $ solver_arg $ seed_arg $ timeout_arg
       $ max_cells_arg))

(* ------------------------------------------------------------------ *)
(* eval                                                                *)

let eval_cmd =
  let indices_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "rows" ] ~docv:"I,J,..."
          ~doc:"Comma-separated row indices of the compact set.")
  in
  let run verbose metrics trace input normalize lenient indices timeout =
    setup_logs verbose;
    setup_obs metrics trace;
    try
      let d = load ~lenient input normalize in
      let parse s =
        try
          Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
        with Failure _ -> Error "rows must be a comma-separated list of integers"
      in
      match parse indices with
      | Error msg -> `Error (false, msg)
      | Ok selected ->
          let n = Rrms_dataset.Dataset.size d in
          if Array.exists (fun i -> i < 0 || i >= n) selected then
            `Error (false, "row index out of range")
          else if Rrms_dataset.Dataset.dim d = 2 || timeout = None then begin
            Printf.printf "regret=%.6f\n" (exact_regret d selected);
            `Ok ()
          end
          else begin
            (* Budgeted LP sweep: on expiry the max over the evaluated
               prefix is a certified lower bound on the true regret. *)
            let guard = Guard.Budget.create ?timeout () in
            let rows = Rrms_dataset.Dataset.rows d in
            let report = Rrms_core.Regret.exact_lp_guarded ~guard ~selected rows in
            let partial =
              report.Rrms_core.Regret.timed_out
              || report.Rrms_core.Regret.skipped_numerical > 0
            in
            Printf.printf "%s=%.6f evaluated=%d/%d\n"
              (if report.Rrms_core.Regret.timed_out then "regret_lower_bound"
               else "regret")
              report.Rrms_core.Regret.regret
              report.Rrms_core.Regret.evaluated report.Rrms_core.Regret.total;
            if partial then begin
              let reasons =
                (if report.Rrms_core.Regret.timed_out then
                   match Guard.Budget.deadline_expired guard with
                   | Some r -> [ r ]
                   | None -> []
                 else [])
                @
                match report.Rrms_core.Regret.skipped_numerical with
                | 0 -> []
                | k -> [ Guard.Numerical_skips k ]
              in
              Printf.printf "degraded: %s\n"
                (Guard.describe (Guard.Degraded reasons));
              exit exit_degraded
            end
            else `Ok ()
          end
    with Guard.Error.Guard_error e -> guard_error e
  in
  let doc = "Evaluate the exact maximum regret ratio of a tuple subset." in
  Cmd.v
    (Cmd.info "eval" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ metrics_arg $ trace_arg $ input_arg
       $ normalize_arg $ lenient_arg $ indices_arg $ timeout_arg))

(* ------------------------------------------------------------------ *)
(* profile                                                             *)

let profile_cmd =
  let indices_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "rows" ] ~docv:"I,J,..."
          ~doc:"Comma-separated row indices of the compact set.")
  in
  let steps_arg =
    Arg.(value & opt int 200 & info [ "steps" ] ~docv:"N" ~doc:"Angle samples.")
  in
  let run verbose input normalize project indices steps =
    setup_logs verbose;
    let d = load ?project input normalize in
    if Rrms_dataset.Dataset.dim d <> 2 then
      `Error (false, "profile requires m = 2 (project first)")
    else begin
      let parse s =
        try
          Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
        with Failure _ ->
          Error "rows must be a comma-separated list of integers"
      in
      match parse indices with
      | Error msg -> `Error (false, msg)
      | Ok selected ->
          let rows = Rrms_dataset.Dataset.rows d in
          let profile =
            Rrms_core.Regret.profile_2d ~steps ~selected rows
          in
          print_endline "angle,regret";
          Array.iter
            (fun (phi, reg) -> Printf.printf "%.6f,%.6f
" phi reg)
            profile;
          `Ok ()
    end
  in
  let doc = "Trace the 2D regret-vs-angle profile of a compact set (CSV)." in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ input_arg $ normalize_arg $ project_arg
       $ indices_arg $ steps_arg))

(* ------------------------------------------------------------------ *)
(* topk                                                                *)

let topk_cmd =
  let k_arg =
    Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"How many answers.")
  in
  let weights_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "weights" ] ~docv:"W1,W2,..."
          ~doc:"Comma-separated non-negative attribute weights.")
  in
  let run verbose input normalize project k weights =
    setup_logs verbose;
    let d = load ?project input normalize in
    let parse s =
      try Ok (Array.of_list (List.map float_of_string (String.split_on_char ',' s)))
      with Failure _ -> Error "weights must be a comma-separated list of numbers"
    in
    match parse weights with
    | Error msg -> `Error (false, msg)
    | Ok w when Array.length w <> Rrms_dataset.Dataset.dim d ->
        `Error (false, "weight count must match the attribute count")
    | Ok w ->
        let rows = Rrms_dataset.Dataset.rows d in
        if Rrms_dataset.Dataset.dim d = 2 then begin
          (* Exact top-k via the ONION layered index. *)
          let onion = Rrms_core.Onion.build ~max_layers:k rows in
          let answers = Rrms_core.Onion.topk onion w ~k in
          Printf.printf "top-%d (exact, ONION %d layers / %d tuples):
" k
            (Rrms_core.Onion.depth onion)
            (Rrms_core.Onion.size_upto onion k);
          print_selection d answers;
          `Ok ()
        end
        else begin
          (* Exact top-k by scan (the index path is 2D-only). *)
          let order = Array.init (Array.length rows) Fun.id in
          Array.sort
            (fun a b ->
              Float.compare
                (Rrms_geom.Vec.dot w rows.(b))
                (Rrms_geom.Vec.dot w rows.(a)))
            order;
          let answers = Array.sub order 0 (min k (Array.length order)) in
          Printf.printf "top-%d (exact, full scan):
" k;
          print_selection d answers;
          `Ok ()
        end
  in
  let doc = "Answer a top-k maxima query (2D: via the ONION index)." in
  Cmd.v
    (Cmd.info "topk" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ input_arg $ normalize_arg $ project_arg
       $ k_arg $ weights_arg))

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "regret-ratio minimizing sets (SIGMOD'17 reproduction)" in
  let info = Cmd.info "rrms" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      generate_cmd; skyline_cmd; hull_cmd; solve_cmd; eval_cmd; topk_cmd;
      profile_cmd;
    ]

let () =
  Rrms_parallel.Pool.configure_from_env ();
  Rrms_parallel.Fault.configure_from_env ();
  Obs.configure_from_env ();
  (* [~catch:false] so structured errors keep their class exit code in
     every subcommand, not just the ones that wrap their run. *)
  match Cmd.eval ~catch:false main_cmd with
  | code -> exit code
  | exception Guard.Error.Guard_error e -> guard_error e
  | exception exn ->
      Printf.eprintf "rrms: internal error: %s\n%!" (Printexc.to_string exn);
      exit Cmd.Exit.internal_error
