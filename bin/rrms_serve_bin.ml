(* rrms-serve: the long-lived RRMS query service (docs/SERVING.md).

   One process, one artifact store: datasets, skylines, hulls, direction
   grids and regret matrices are computed once and shared by every
   session; Exact answers land in a result cache keyed by
   (dataset, algo, r, γ).  Three modes:

     --socket PATH    daemon on a Unix-domain socket, one thread per
                      connection (the service mode)
     --stdio          one session over stdin/stdout (scripting, tests)
     --connect PATH   thin client: relay stdin lines to a running
                      daemon and print its responses (CI smoke jobs
                      need no netcat) *)

open Cmdliner
module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs
module Store = Rrms_serve.Store
module Server = Rrms_serve.Server
module Telemetry = Rrms_serve.Telemetry
module Json = Rrms_serve.Json

let guard_error e =
  Printf.eprintf "rrms-serve: error: %s\n%!" (Guard.Error.to_string e);
  exit (Guard.Error.exit_code e)

let connect_to path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "rrms-serve: cannot connect to %s: %s\n%!" path
        (Unix.error_message err);
      exit 69);
  fd

(* ------------------------------------------------------------------ *)
(* --top: live stats table                                             *)
(* ------------------------------------------------------------------ *)

(* One persistent connection; each tick sends a [stats] request and
   renders the per-(algo, cache, status) latency table plus a service
   summary line from the metric snapshot. *)
let top path ~interval ~iterations =
  let fd = connect_to path in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sstr j k = match Json.member k j with Some v -> Json.str v | None -> None in
  let snum j k = match Json.member k j with Some v -> Json.num v | None -> None in
  let fnum j k = Option.value ~default:0. (snum j k) in
  let metric result name =
    match Json.member "metrics" result with
    | Some ms -> fnum ms name
    | None -> 0.
  in
  let render result =
    let buf = Buffer.create 2048 in
    let hits = metric result "rrms_serve_result_hits_total" in
    let misses = metric result "rrms_serve_result_misses_total" in
    let probed = hits +. misses in
    let hit_rate = if probed > 0. then 100. *. hits /. probed else 0. in
    Buffer.add_string buf
      (Printf.sprintf
         "rrms-top — %s\nrequests %.0f   errors %.0f   result hit-rate %.1f%% \
          (%.0f/%.0f)   inflight %.0f   queued %.0f   overloaded %.0f\n\n"
         path
         (metric result "rrms_serve_requests_total")
         (metric result "rrms_serve_errors_total")
         hit_rate hits probed
         (metric result "rrms_serve_inflight")
         (metric result "rrms_serve_queue_depth")
         (metric result "rrms_serve_overloaded_total"));
    Buffer.add_string buf
      (Printf.sprintf "%-12s %-8s %-9s %8s %10s %10s %10s %10s\n" "ALGO"
         "CACHE" "STATUS" "COUNT" "P50(ms)" "P95(ms)" "P99(ms)" "MAX(ms)");
    let rows =
      match Json.member "latency" result with
      | Some lat -> (
          match Json.member "histograms" lat with
          | Some (Json.Arr rows) -> rows
          | _ -> [])
      | None -> []
    in
    if rows = [] then Buffer.add_string buf "  (no queries observed yet)\n"
    else
      List.iter
        (fun row ->
          let s k = Option.value ~default:"?" (sstr row k) in
          Buffer.add_string buf
            (Printf.sprintf "%-12s %-8s %-9s %8.0f %10.3f %10.3f %10.3f %10.3f\n"
               (s "algo") (s "cache") (s "status") (fnum row "count")
               (fnum row "p50_ms") (fnum row "p95_ms") (fnum row "p99_ms")
               (fnum row "max_ms")))
        rows;
    (match Json.member "latency" result with
    | Some lat ->
        let slow = fnum lat "slow_queries" in
        let lines = fnum lat "access_log_lines" in
        if slow > 0. || lines > 0. then
          Buffer.add_string buf
            (Printf.sprintf "\naccess-log lines %.0f   slow queries %.0f\n"
               lines slow)
    | None -> ());
    Buffer.contents buf
  in
  let rec loop n =
    output_string oc "{\"id\": 0, \"req\": \"stats\"}\n";
    flush oc;
    (match input_line ic with
    | exception End_of_file ->
        Printf.eprintf "rrms-serve: server closed the connection\n%!";
        exit 1
    | line -> (
        match Json.parse line with
        | Error e ->
            Printf.eprintf "rrms-serve: bad stats response: %s\n%!" e;
            exit 1
        | Ok j -> (
            match Json.member "result" j with
            | Some result ->
                (* Clear screen + home when on a tty; plain append
                   otherwise so output stays greppable in pipes. *)
                if Unix.isatty Unix.stdout then print_string "\027[2J\027[H";
                print_string (render result);
                flush stdout
            | None ->
                Printf.eprintf "rrms-serve: stats request failed: %s\n%!" line;
                exit 1)));
    if iterations = 0 || n + 1 < iterations then begin
      Unix.sleepf interval;
      loop (n + 1)
    end
  in
  loop 0;
  close_out_noerr oc

let client path =
  let fd = connect_to path in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
        output_string oc line;
        output_char oc '\n';
        flush oc;
        match input_line ic with
        | exception End_of_file ->
            Printf.eprintf "rrms-serve: server closed the connection\n%!";
            exit 1
        | response ->
            print_endline response;
            loop ())
  in
  loop ();
  close_out_noerr oc

let run stdio connect top_path socket domains max_inflight max_queue obs
    access_log slow_ms interval iterations =
  Rrms_parallel.Pool.configure_from_env ();
  Rrms_parallel.Fault.configure_from_env ();
  (* A resident service records by default: RRMS_OBS / RRMS_TRACE win
     when set, then --obs, then Counters. *)
  (match (Sys.getenv_opt "RRMS_OBS", Sys.getenv_opt "RRMS_TRACE") with
  | None, None -> (
      Obs.set_level
        (match obs with
        | "off" -> Obs.Disabled
        | "full" -> Obs.Full
        | _ -> Obs.Counters))
  | _ -> Obs.configure_from_env ());
  (match domains with
  | Some d when d >= 1 -> Rrms_parallel.Pool.set_default_size d
  | Some _ | None -> ());
  let telemetry () =
    match (access_log, slow_ms) with
    | None, None -> Telemetry.default
    | _ ->
        let t = Telemetry.create ?access_log ?slow_ms () in
        at_exit (fun () -> Telemetry.close t);
        t
  in
  try
    match (connect, top_path, stdio, socket) with
    | Some path, _, _, _ -> `Ok (client path)
    | None, Some path, _, _ -> `Ok (top path ~interval ~iterations)
    | None, None, true, _ ->
        let store = Store.create ~max_inflight ~max_queue () in
        ignore (Server.serve_stdio ~telemetry:(telemetry ()) store);
        `Ok ()
    | None, None, false, Some path ->
        let store = Store.create ~max_inflight ~max_queue () in
        let srv = Server.start ~telemetry:(telemetry ()) store ~socket:path in
        Printf.eprintf "rrms-serve: listening on %s\n%!" path;
        Server.wait srv;
        `Ok ()
    | None, None, false, None ->
        `Error
          ( true,
            "one of --socket PATH, --stdio, --connect PATH or --top PATH is \
             required" )
  with Guard.Error.Guard_error e -> guard_error e

let cmd =
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ] ~doc:"Serve one session over stdin/stdout.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:"Act as a client of the daemon at $(docv), relaying stdin.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on the Unix-domain socket $(docv).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains for the parallel kernels (default: \
             $(b,RRMS_DOMAINS) or 1).")
  in
  let max_inflight =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Concurrent solves admitted before queueing.")
  in
  let max_queue =
    Arg.(
      value & opt int 16
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Solves queued beyond the in-flight cap before requests are \
             shed with an $(i,overloaded) error.")
  in
  let obs =
    Arg.(
      value
      & opt (enum [ ("off", "off"); ("counters", "counters"); ("full", "full") ])
          "counters"
      & info [ "obs" ] ~docv:"LEVEL"
          ~doc:
            "Observability level when $(b,RRMS_OBS) is unset (off | \
             counters | full).")
  in
  let top_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "top" ] ~docv:"PATH"
          ~doc:
            "Poll the daemon at $(docv) with $(i,stats) requests and render \
             a live per-(algo, cache, status) latency/hit-rate table.")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per query request to $(docv): request id, \
             algo, r, gamma, dataset hash, cache outcome, queue wait, solve \
             time, probes/cells.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"N"
          ~doc:
            "Dump the full per-request span trace of any query taking at \
             least $(docv) ms (to the access log when set, stderr \
             otherwise).")
  in
  let interval =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Polling interval for $(b,--top).")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop $(b,--top) after $(docv) polls (0 = run until killed).")
  in
  let doc = "long-lived RRMS query service over line-delimited JSON" in
  Cmd.v
    (Cmd.info "rrms-serve" ~doc)
    Term.(
      ret
        (const run $ stdio $ connect $ top_path $ socket $ domains
       $ max_inflight $ max_queue $ obs $ access_log $ slow_ms $ interval
       $ iterations))

let () = exit (Cmd.eval cmd)
