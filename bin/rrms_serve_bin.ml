(* rrms-serve: the long-lived RRMS query service (docs/SERVING.md).

   One process, one artifact store: datasets, skylines, hulls, direction
   grids and regret matrices are computed once and shared by every
   session; Exact answers land in a result cache keyed by
   (dataset, algo, r, γ).  Three modes:

     --socket PATH    daemon on a Unix-domain socket, one thread per
                      connection (the service mode)
     --stdio          one session over stdin/stdout (scripting, tests)
     --connect PATH   thin client: relay stdin lines to a running
                      daemon and print its responses (CI smoke jobs
                      need no netcat)

   With --router and N --shard-socket PATHs, the socket/stdio session is
   a fan-out router instead: HD solves send skyline requests to the
   worker daemons (each holding its round-robin slice), merge, and
   answer from merged artifacts — byte-identical to a single process. *)

open Cmdliner
module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs
module Store = Rrms_serve.Store
module Server = Rrms_serve.Server
module Shard = Rrms_serve.Shard
module Persist = Rrms_serve.Persist
module Telemetry = Rrms_serve.Telemetry
module Json = Rrms_serve.Json

let guard_error e =
  Printf.eprintf "rrms-serve: error: %s\n%!" (Guard.Error.to_string e);
  exit (Guard.Error.exit_code e)

let connect_to path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "rrms-serve: cannot connect to %s: %s\n%!" path
        (Unix.error_message err);
      exit 69);
  fd

(* ------------------------------------------------------------------ *)
(* --top: live stats table                                             *)
(* ------------------------------------------------------------------ *)

(* One persistent connection; each tick sends a [stats] request and
   renders the per-(algo, cache, status) latency table plus a service
   summary line from the metric snapshot. *)
let top path ~interval ~iterations =
  let fd = connect_to path in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sstr j k = match Json.member k j with Some v -> Json.str v | None -> None in
  let snum j k = match Json.member k j with Some v -> Json.num v | None -> None in
  let fnum j k = Option.value ~default:0. (snum j k) in
  let metric result name =
    match Json.member "metrics" result with
    | Some ms -> fnum ms name
    | None -> 0.
  in
  let hist_rows container =
    match Json.member "histograms" container with
    | Some (Json.Arr rows) -> rows
    | _ -> []
  in
  (* Cluster view (a router's stats): the per-(algo, cache, status)
     table gains a SHARD column — the "all" rows are exact
     cross-process merges, followed by each process under its own
     label — plus a worker liveness/skew summary. *)
  let render_cluster buf cluster =
    Buffer.add_string buf
      (Printf.sprintf "\ncluster — %.0f processes\n"
         (fnum cluster "processes"));
    (match Json.member "workers" cluster with
    | Some (Json.Arr ws) ->
        List.iter
          (fun w ->
            let connected =
              match Json.member "connected" w with
              | Some (Json.Bool true) -> "up"
              | _ -> "down"
            in
            let shard =
              match Json.member "shard" w with
              | Some (Json.Num x) -> Printf.sprintf "%.0f" x
              | Some (Json.Str s) -> s
              | _ -> "?"
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "  shard %-3s %-4s busy %8.3fs   requests %6.0f   errors \
                  %4.0f   hit-rate %5.1f%%\n"
                 shard connected
                 (fnum w "busy_seconds") (fnum w "requests")
                 (fnum w "errors")
                 (100. *. fnum w "hit_rate")))
          ws
    | _ -> ());
    (match Json.member "skew" cluster with
    | Some skew ->
        Buffer.add_string buf
          (Printf.sprintf
             "  skew: busy max %.3fs   min %.3fs   straggler gap %.3fs\n"
             (fnum skew "busy_max_seconds") (fnum skew "busy_min_seconds")
             (fnum skew "straggler_gap_seconds"))
    | None -> ());
    let rows =
      match Json.member "latency" cluster with
      | Some lat -> hist_rows lat
      | None -> []
    in
    Buffer.add_string buf
      (Printf.sprintf "\n%-7s %-12s %-8s %-9s %8s %10s %10s %10s %10s\n"
         "SHARD" "ALGO" "CACHE" "STATUS" "COUNT" "P50(ms)" "P95(ms)"
         "P99(ms)" "MAX(ms)");
    if rows = [] then Buffer.add_string buf "  (no queries observed yet)\n"
    else
      List.iter
        (fun row ->
          let s k = Option.value ~default:"?" (sstr row k) in
          Buffer.add_string buf
            (Printf.sprintf
               "%-7s %-12s %-8s %-9s %8.0f %10.3f %10.3f %10.3f %10.3f\n"
               (s "shard") (s "algo") (s "cache") (s "status")
               (fnum row "count") (fnum row "p50_ms") (fnum row "p95_ms")
               (fnum row "p99_ms") (fnum row "max_ms")))
        rows
  in
  let render result =
    let buf = Buffer.create 2048 in
    let hits = metric result "rrms_serve_result_hits_total" in
    let misses = metric result "rrms_serve_result_misses_total" in
    let probed = hits +. misses in
    let hit_rate = if probed > 0. then 100. *. hits /. probed else 0. in
    Buffer.add_string buf
      (Printf.sprintf
         "rrms-top — %s\nrequests %.0f   errors %.0f   result hit-rate %.1f%% \
          (%.0f/%.0f)   inflight %.0f   queued %.0f   overloaded %.0f\n\n"
         path
         (metric result "rrms_serve_requests_total")
         (metric result "rrms_serve_errors_total")
         hit_rate hits probed
         (metric result "rrms_serve_inflight")
         (metric result "rrms_serve_queue_depth")
         (metric result "rrms_serve_overloaded_total"));
    (match Json.member "cluster" result with
    | Some cluster -> render_cluster buf cluster
    | None ->
        Buffer.add_string buf
          (Printf.sprintf "%-12s %-8s %-9s %8s %10s %10s %10s %10s\n" "ALGO"
             "CACHE" "STATUS" "COUNT" "P50(ms)" "P95(ms)" "P99(ms)" "MAX(ms)");
        let rows =
          match Json.member "latency" result with
          | Some lat -> hist_rows lat
          | None -> []
        in
        if rows = [] then Buffer.add_string buf "  (no queries observed yet)\n"
        else
          List.iter
            (fun row ->
              let s k = Option.value ~default:"?" (sstr row k) in
              Buffer.add_string buf
                (Printf.sprintf
                   "%-12s %-8s %-9s %8.0f %10.3f %10.3f %10.3f %10.3f\n"
                   (s "algo") (s "cache") (s "status") (fnum row "count")
                   (fnum row "p50_ms") (fnum row "p95_ms") (fnum row "p99_ms")
                   (fnum row "max_ms")))
            rows);
    (match Json.member "latency" result with
    | Some lat ->
        let slow = fnum lat "slow_queries" in
        let lines = fnum lat "access_log_lines" in
        if slow > 0. || lines > 0. then
          Buffer.add_string buf
            (Printf.sprintf "\naccess-log lines %.0f   slow queries %.0f\n"
               lines slow)
    | None -> ());
    Buffer.contents buf
  in
  let rec loop n =
    output_string oc "{\"id\": 0, \"req\": \"stats\"}\n";
    flush oc;
    (match input_line ic with
    | exception End_of_file ->
        Printf.eprintf "rrms-serve: server closed the connection\n%!";
        exit 1
    | line -> (
        match Json.parse line with
        | Error e ->
            Printf.eprintf "rrms-serve: bad stats response: %s\n%!" e;
            exit 1
        | Ok j -> (
            match Json.member "result" j with
            | Some result ->
                (* Clear screen + home when on a tty; plain append
                   otherwise so output stays greppable in pipes. *)
                if Unix.isatty Unix.stdout then print_string "\027[2J\027[H";
                print_string (render result);
                flush stdout
            | None ->
                Printf.eprintf "rrms-serve: stats request failed: %s\n%!" line;
                exit 1)));
    if iterations = 0 || n + 1 < iterations then begin
      Unix.sleepf interval;
      loop (n + 1)
    end
  in
  loop 0;
  close_out_noerr oc

(* ------------------------------------------------------------------ *)
(* --connect: thin client with idempotent ids and retry               *)
(* ------------------------------------------------------------------ *)

(* Queries and loads are idempotent on the server (content-addressed
   store, deterministic solvers, result cache), so a request that died
   with its connection — or was shed with [overloaded] / refused with
   [draining] — can be resent verbatim under the same id.  The client
   stamps an id of its own ("c<pid>-<seq>") on any request line that
   lacks one, so every retry is attributable in the access log. *)

let retryable_code response =
  match Json.parse response with
  | Ok j when Json.member "ok" j = Some (Json.Bool false) -> (
      match Json.member "error" j with
      | Some e -> (
          match Option.bind (Json.member "code" e) Json.str with
          | Some ("overloaded" | "draining") -> true
          | _ -> false)
      | None -> false)
  | _ -> false

let stamp_id ~seq line =
  match Json.parse line with
  | Ok (Json.Obj fields) when not (List.mem_assoc "id" fields) ->
      let id = Printf.sprintf "c%d-%d" (Unix.getpid ()) seq in
      Json.to_string (Json.Obj (("id", Json.Str id) :: fields))
  | _ -> line

let try_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Some (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let client path ~retries ~retry_backoff_ms =
  Random.self_init ();
  (* Jittered exponential backoff: base · 2^attempt · U[0.75, 1.25). *)
  let backoff attempt =
    let base = retry_backoff_ms /. 1000. in
    let d = base *. (2. ** float_of_int attempt) in
    Unix.sleepf (d *. (0.75 +. (Random.float 0.5)))
  in
  let conn = ref None in
  let connect_or_retry () =
    match !conn with
    | Some c -> Some c
    | None ->
        let rec go attempt =
          match try_connect path with
          | Some c ->
              conn := Some c;
              Some c
          | None when attempt < retries ->
              backoff attempt;
              go (attempt + 1)
          | None -> None
        in
        go 0
  in
  let drop_conn () =
    (match !conn with
    | Some (fd, _, _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    conn := None
  in
  let rec exchange line attempt =
    match connect_or_retry () with
    | None ->
        Printf.eprintf "rrms-serve: cannot connect to %s\n%!" path;
        exit 69
    | Some (_, ic, oc) -> (
        let sent =
          try
            output_string oc line;
            output_char oc '\n';
            flush oc;
            true
          with Sys_error _ -> false
        in
        let response =
          if not sent then None
          else match input_line ic with
            | r -> Some r
            | exception (End_of_file | Sys_error _) -> None
        in
        match response with
        | None ->
            (* The connection died with the request in flight: the
               request is idempotent, so reconnect and resend it under
               the same id. *)
            drop_conn ();
            if attempt < retries then begin
              backoff attempt;
              exchange line (attempt + 1)
            end
            else begin
              Printf.eprintf "rrms-serve: server closed the connection\n%!";
              exit 1
            end
        | Some r when retryable_code r && attempt < retries ->
            backoff attempt;
            exchange line (attempt + 1)
        | Some r -> print_endline r)
  in
  let rec loop seq =
    match input_line stdin with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop seq
    | line ->
        exchange (stamp_id ~seq line) 0;
        loop (seq + 1)
  in
  loop 1;
  drop_conn ()

(* ------------------------------------------------------------------ *)
(* Supervision                                                        *)
(* ------------------------------------------------------------------ *)

(* --supervise: fork the serving process and restart it after abnormal
   exit with capped, jittered exponential backoff.  A child that exits
   0 (clean drain) ends supervision; SIGTERM/SIGINT to the supervisor
   are forwarded to the child so the whole tree drains gracefully.  The
   incarnation number rides into each child as RRMS_SERVE_RESTARTS and
   surfaces in the stats response. *)
let supervise run_child =
  Random.self_init ();
  let stop_requested = ref false in
  let child = ref None in
  let forward signal =
    match !child with
    | Some pid -> ( try Unix.kill pid signal with Unix.Unix_error _ -> ())
    | None -> ()
  in
  let on_stop signal _ =
    stop_requested := true;
    forward signal
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (on_stop Sys.sigterm));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (on_stop Sys.sigint));
  let rec waitpid pid =
    match Unix.waitpid [] pid with
    | r -> r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid pid
  in
  let status_string = function
    | Unix.WEXITED c -> Printf.sprintf "exit %d" c
    | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
    | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
  in
  let rec loop ~restarts ~backoff =
    if !stop_requested then exit 0;
    Unix.putenv "RRMS_SERVE_RESTARTS" (string_of_int restarts);
    let started = Unix.gettimeofday () in
    match Unix.fork () with
    | 0 -> run_child () (* serves, then exits; never returns here *)
    | pid -> (
        child := Some pid;
        Printf.eprintf "rrms-serve: supervising pid=%d (restarts=%d)\n%!" pid
          restarts;
        let _, status = waitpid pid in
        child := None;
        let uptime = Unix.gettimeofday () -. started in
        match status with
        | Unix.WEXITED 0 -> exit 0
        | status when !stop_requested ->
            Printf.eprintf "rrms-serve: child %s during shutdown\n%!"
              (status_string status);
            exit 0
        | status ->
            (* A healthy stretch of uptime resets the backoff — only a
               crash loop escalates it. *)
            let backoff =
              if uptime > 5. then 0.1 else Float.min 30. (backoff *. 2.)
            in
            let delay = backoff *. (0.75 +. Random.float 0.5) in
            Printf.eprintf
              "rrms-serve: child %s after %.1fs; restarting in %.2fs\n%!"
              (status_string status) uptime delay;
            Unix.sleepf delay;
            loop ~restarts:(restarts + 1) ~backoff)
  in
  loop ~restarts:0 ~backoff:0.05

let run stdio connect top_path socket router shard_sockets domains
    max_inflight max_queue obs access_log slow_ms interval iterations
    state_dir supervise_flag grace retries retry_backoff_ms =
  Rrms_parallel.Pool.configure_from_env ();
  Rrms_parallel.Fault.configure_from_env ();
  Persist.Fault.configure_from_env ();
  (* A resident service records by default: RRMS_OBS / RRMS_TRACE win
     when set, then --obs, then Counters. *)
  (match (Sys.getenv_opt "RRMS_OBS", Sys.getenv_opt "RRMS_TRACE") with
  | None, None -> (
      Obs.set_level
        (match obs with
        | "off" -> Obs.Disabled
        | "full" -> Obs.Full
        | _ -> Obs.Counters))
  | _ -> Obs.configure_from_env ());
  (match domains with
  | Some d when d >= 1 -> Rrms_parallel.Pool.set_default_size d
  | Some _ | None -> ());
  let telemetry () =
    match (access_log, slow_ms) with
    | None, None -> Telemetry.default
    | _ ->
        let t = Telemetry.create ?access_log ?slow_ms () in
        at_exit (fun () -> Telemetry.close t);
        t
  in
  let persist () = Option.map Persist.open_dir state_dir in
  (* The session handler and the store behind it (for drain): a plain
     store-backed server, or the shard router fanning out to the worker
     daemons named by --shard-socket.  Only the plain store owns
     writable state: it opens the --state-dir and replays the mutation
     write-ahead log before serving, so a restarted instance answers
     from the exact dataset generation the crashed one had installed. *)
  let make_handler () =
    if router then begin
      let rt =
        Shard.Router.create ~telemetry:(telemetry ()) ~max_inflight ~max_queue
          ~workers:shard_sockets ()
      in
      at_exit (fun () -> Shard.Router.close rt);
      (Shard.Router.handler rt, Shard.Router.store rt)
    end
    else
      let p = persist () in
      let store = Store.create ~max_inflight ~max_queue ?persist:p () in
      Option.iter
        (fun p ->
          let { Rrms_serve.Mutate.records; applied; skipped } =
            Rrms_serve.Mutate.replay store p
          in
          if records > 0 then
            Printf.eprintf
              "rrms-serve: replayed mutation log: %d records, %d applied, %d \
               skipped\n\
               %!"
              records applied skipped)
        p;
      (Server.store_handler ~telemetry:(telemetry ()) store, store)
  in
  let serve_socket path () =
    let handler, store = make_handler () in
    let srv = Server.start_handler handler ~socket:path in
    (* SIGTERM/SIGINT → graceful drain.  The handler only spawns the
       drain thread (handlers must not block); the main thread's
       [Server.wait] returns once the accept loop stops, and the
       process exits 0 through the normal path — at_exit flushes the
       access log. *)
    let draining = Atomic.make false in
    let on_signal _ =
      if not (Atomic.exchange draining true) then
        ignore (Thread.create (fun () -> Server.drain ~grace srv store) ())
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Printf.eprintf "rrms-serve: listening on %s\n%!" path;
    Server.wait srv
  in
  try
    if router && shard_sockets = [] then
      `Error (true, "--router requires at least one --shard-socket PATH")
    else if (not router) && shard_sockets <> [] then
      `Error (true, "--shard-socket requires --router")
    else if router && state_dir <> None then
      `Error
        ( true,
          "--router cannot take --state-dir: the router holds no writable \
           state (mutations answer read_only); run --state-dir on the \
           workers instead" )
    else
      match (connect, top_path, stdio, socket) with
      | Some path, _, _, _ -> `Ok (client path ~retries ~retry_backoff_ms)
      | None, Some path, _, _ -> `Ok (top path ~interval ~iterations)
      | None, None, true, _ ->
          let handler, _store = make_handler () in
          ignore (Server.run_handler_session handler stdin stdout);
          `Ok ()
      | None, None, false, Some path ->
          if supervise_flag then
            `Ok (supervise (fun () -> serve_socket path (); exit 0))
          else `Ok (serve_socket path ())
      | None, None, false, None ->
          if supervise_flag then
            `Error (true, "--supervise requires --socket PATH")
          else
            `Error
              ( true,
                "one of --socket PATH, --stdio, --connect PATH or --top PATH \
                 is required" )
  with Guard.Error.Guard_error e -> guard_error e

let cmd =
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ] ~doc:"Serve one session over stdin/stdout.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:"Act as a client of the daemon at $(docv), relaying stdin.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on the Unix-domain socket $(docv).")
  in
  let router =
    Arg.(
      value & flag
      & info [ "router" ]
          ~doc:
            "Serve as a shard router: fan HD solves out as $(i,skyline) \
             requests to the worker daemons given by $(b,--shard-socket), \
             merge their answers, and solve over the merged artifacts — \
             byte-identical to a single-process server.  Combines with \
             $(b,--socket) or $(b,--stdio).")
  in
  let shard_sockets =
    Arg.(
      value & opt_all string []
      & info [ "shard-socket" ] ~docv:"PATH"
          ~doc:
            "Unix socket of one shard worker (repeatable; order defines the \
             shard index).  Worker $(i,s) of $(i,N) is sent $(i,load) \
             requests with shard_index=$(i,s), shard_count=$(i,N), so it \
             holds the matching round-robin slice.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains for the parallel kernels (default: \
             $(b,RRMS_DOMAINS) or 1).")
  in
  let max_inflight =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Concurrent solves admitted before queueing.")
  in
  let max_queue =
    Arg.(
      value & opt int 16
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Solves queued beyond the in-flight cap before requests are \
             shed with an $(i,overloaded) error.")
  in
  let obs =
    Arg.(
      value
      & opt (enum [ ("off", "off"); ("counters", "counters"); ("full", "full") ])
          "counters"
      & info [ "obs" ] ~docv:"LEVEL"
          ~doc:
            "Observability level when $(b,RRMS_OBS) is unset (off | \
             counters | full).")
  in
  let top_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "top" ] ~docv:"PATH"
          ~doc:
            "Poll the daemon at $(docv) with $(i,stats) requests and render \
             a live per-(algo, cache, status) latency/hit-rate table.")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per query request to $(docv): request id, \
             algo, r, gamma, dataset hash, cache outcome, queue wait, solve \
             time, probes/cells.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"N"
          ~doc:
            "Dump the full per-request span trace of any query taking at \
             least $(docv) ms (to the access log when set, stderr \
             otherwise).")
  in
  let interval =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Polling interval for $(b,--top).")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop $(b,--top) after $(docv) polls (0 = run until killed).")
  in
  let state_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Durable artifact cache: spill skylines, direction grids, \
             regret matrices and Exact results to content-addressed blobs \
             under $(docv) (created if absent), and rehydrate them on \
             demand after a restart.  Mutations are journaled to a \
             checksummed write-ahead log in the same directory and \
             replayed at startup.  Torn or corrupt blobs are detected by \
             checksum, discarded and counted, never served.  Incompatible \
             with $(b,--router).")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Fork the serving process and restart it after abnormal exit \
             with capped exponential backoff (socket mode only).  A clean \
             exit — graceful drain — ends supervision; SIGTERM/SIGINT are \
             forwarded to the child.")
  in
  let grace =
    Arg.(
      value & opt float 5.
      & info [ "grace" ] ~docv:"SECONDS"
          ~doc:
            "Drain grace period on SIGTERM/SIGINT: how long to let \
             in-flight solves settle before sessions are cut off.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "$(b,--connect) only: resend a request (same id) up to $(docv) \
             times after a lost connection or an $(i,overloaded) / \
             $(i,draining) refusal, with jittered exponential backoff.")
  in
  let retry_backoff_ms =
    Arg.(
      value & opt float 50.
      & info [ "retry-backoff-ms" ] ~docv:"MS"
          ~doc:"Base backoff for $(b,--connect) retries.")
  in
  let doc = "long-lived RRMS query service over line-delimited JSON" in
  Cmd.v
    (Cmd.info "rrms-serve" ~doc)
    Term.(
      ret
        (const run $ stdio $ connect $ top_path $ socket $ router
       $ shard_sockets $ domains $ max_inflight $ max_queue $ obs
       $ access_log $ slow_ms $ interval $ iterations $ state_dir
       $ supervise $ grace $ retries $ retry_backoff_ms))

let () = exit (Cmd.eval cmd)
