(* rrms-serve: the long-lived RRMS query service (docs/SERVING.md).

   One process, one artifact store: datasets, skylines, hulls, direction
   grids and regret matrices are computed once and shared by every
   session; Exact answers land in a result cache keyed by
   (dataset, algo, r, γ).  Three modes:

     --socket PATH    daemon on a Unix-domain socket, one thread per
                      connection (the service mode)
     --stdio          one session over stdin/stdout (scripting, tests)
     --connect PATH   thin client: relay stdin lines to a running
                      daemon and print its responses (CI smoke jobs
                      need no netcat) *)

open Cmdliner
module Guard = Rrms_guard.Guard
module Obs = Rrms_obs.Obs
module Store = Rrms_serve.Store
module Server = Rrms_serve.Server

let guard_error e =
  Printf.eprintf "rrms-serve: error: %s\n%!" (Guard.Error.to_string e);
  exit (Guard.Error.exit_code e)

let client path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "rrms-serve: cannot connect to %s: %s\n%!" path
        (Unix.error_message err);
      exit 69);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
        output_string oc line;
        output_char oc '\n';
        flush oc;
        match input_line ic with
        | exception End_of_file ->
            Printf.eprintf "rrms-serve: server closed the connection\n%!";
            exit 1
        | response ->
            print_endline response;
            loop ())
  in
  loop ();
  close_out_noerr oc

let run stdio connect socket domains max_inflight max_queue obs =
  Rrms_parallel.Pool.configure_from_env ();
  Rrms_parallel.Fault.configure_from_env ();
  (* A resident service records by default: RRMS_OBS / RRMS_TRACE win
     when set, then --obs, then Counters. *)
  (match (Sys.getenv_opt "RRMS_OBS", Sys.getenv_opt "RRMS_TRACE") with
  | None, None -> (
      Obs.set_level
        (match obs with
        | "off" -> Obs.Disabled
        | "full" -> Obs.Full
        | _ -> Obs.Counters))
  | _ -> Obs.configure_from_env ());
  (match domains with
  | Some d when d >= 1 -> Rrms_parallel.Pool.set_default_size d
  | Some _ | None -> ());
  try
    match (connect, stdio, socket) with
    | Some path, _, _ -> `Ok (client path)
    | None, true, _ ->
        let store = Store.create ~max_inflight ~max_queue () in
        ignore (Server.serve_stdio store);
        `Ok ()
    | None, false, Some path ->
        let store = Store.create ~max_inflight ~max_queue () in
        let srv = Server.start store ~socket:path in
        Printf.eprintf "rrms-serve: listening on %s\n%!" path;
        Server.wait srv;
        `Ok ()
    | None, false, None ->
        `Error (true, "one of --socket PATH, --stdio or --connect PATH is required")
  with Guard.Error.Guard_error e -> guard_error e

let cmd =
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ] ~doc:"Serve one session over stdin/stdout.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:"Act as a client of the daemon at $(docv), relaying stdin.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on the Unix-domain socket $(docv).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains for the parallel kernels (default: \
             $(b,RRMS_DOMAINS) or 1).")
  in
  let max_inflight =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Concurrent solves admitted before queueing.")
  in
  let max_queue =
    Arg.(
      value & opt int 16
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Solves queued beyond the in-flight cap before requests are \
             shed with an $(i,overloaded) error.")
  in
  let obs =
    Arg.(
      value
      & opt (enum [ ("off", "off"); ("counters", "counters"); ("full", "full") ])
          "counters"
      & info [ "obs" ] ~docv:"LEVEL"
          ~doc:
            "Observability level when $(b,RRMS_OBS) is unset (off | \
             counters | full).")
  in
  let doc = "long-lived RRMS query service over line-delimited JSON" in
  Cmd.v
    (Cmd.info "rrms-serve" ~doc)
    Term.(
      ret
        (const run $ stdio $ connect $ socket $ domains $ max_inflight
       $ max_queue $ obs))

let () = exit (Cmd.eval cmd)
